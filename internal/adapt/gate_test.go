package adapt

import (
	"math"
	"testing"

	"cqm/internal/core"
)

// labelObs builds a minimal validation observation with the given
// pseudo-label.
func labelObs(correct bool) core.Observation {
	return core.Observation{Cues: []float64{0.5}, Class: 0, Correct: correct}
}

func labelObsN(n int, correct bool) []core.Observation {
	out := make([]core.Observation, n)
	for i := range out {
		out[i] = labelObs(correct)
	}
	return out
}

func TestSplitWindowStride(t *testing.T) {
	window := make([]core.Observation, 9)
	for i := range window {
		window[i] = labelObs(i%validationStride == validationStride-1)
	}
	train, validation := splitWindow(window)
	if len(train) != 7 || len(validation) != 2 {
		t.Fatalf("split 9 → %d train, %d validation; want 7, 2", len(train), len(validation))
	}
	// Indices 3 and 7 are the held-out ones, and they were marked Correct.
	for i, o := range validation {
		if !o.Correct {
			t.Errorf("validation[%d] is not a stride pick", i)
		}
	}
	for i, o := range train {
		if o.Correct {
			t.Errorf("train[%d] is a stride pick that leaked into training", i)
		}
	}
}

func TestEvalModel(t *testing.T) {
	validation := labelObsN(4, true)

	rmse, dec := evalModel(biasMeasure(t, 0.9), validation, 0.5)
	if math.Abs(rmse-0.1) > 1e-9 {
		t.Errorf("RMSE = %v, want 0.1", rmse)
	}
	for i, d := range dec {
		if d != decideAccept {
			t.Errorf("decision[%d] = %d, want accept", i, d)
		}
	}

	rmse, dec = evalModel(biasMeasure(t, 0.2), validation, 0.5)
	if math.Abs(rmse-0.8) > 1e-9 {
		t.Errorf("RMSE = %v, want 0.8", rmse)
	}
	for i, d := range dec {
		if d != decideDiscard {
			t.Errorf("decision[%d] = %d, want discard", i, d)
		}
	}

	// Raw output 3 is outside the normalizable range: every score is ε,
	// each contributing the worst-case error of 1.
	rmse, dec = evalModel(biasMeasure(t, 3), validation, 0.5)
	if math.Abs(rmse-1) > 1e-9 {
		t.Errorf("ε RMSE = %v, want 1", rmse)
	}
	for i, d := range dec {
		if d != decideEpsilon {
			t.Errorf("decision[%d] = %d, want ε", i, d)
		}
	}

	if rmse, _ := evalModel(biasMeasure(t, 0.9), nil, 0.5); rmse != 0 {
		t.Errorf("empty validation RMSE = %v, want 0", rmse)
	}
}

func TestAgreementOf(t *testing.T) {
	if got := agreementOf([]int8{1, 0, -1, 1}, []int8{1, 0, 1, 1}); got != 0.75 {
		t.Errorf("agreement = %v, want 0.75", got)
	}
	if got := agreementOf(nil, nil); got != 0 {
		t.Errorf("empty agreement = %v, want 0", got)
	}
	if got := agreementOf([]int8{1}, []int8{1, 0}); got != 0 {
		t.Errorf("length-mismatch agreement = %v, want 0", got)
	}
}

func TestGateVerdicts(t *testing.T) {
	const threshold, minAgreement, slack = 0.5, 0.5, 0.15

	t.Run("pass", func(t *testing.T) {
		// Candidate a bit worse on RMSE (0.2 vs 0.1) but within slack, and
		// in full operational agreement.
		v := gate(biasMeasure(t, 0.8), biasMeasure(t, 0.9), labelObsN(8, true), threshold, minAgreement, slack)
		if !v.pass {
			t.Fatalf("gate failed: %q", v.reason)
		}
		if v.agreement != 1 {
			t.Errorf("agreement = %v, want 1", v.agreement)
		}
		if math.Abs(v.candidateRMSE-0.2) > 1e-9 || math.Abs(v.incumbentRMSE-0.1) > 1e-9 {
			t.Errorf("RMSEs = %v vs %v, want 0.2 vs 0.1", v.candidateRMSE, v.incumbentRMSE)
		}
	})

	t.Run("rmse-regression", func(t *testing.T) {
		// A diverged candidate scores ε everywhere: RMSE 1 against the
		// incumbent's 0.1, far past the slack.
		v := gate(biasMeasure(t, 3), biasMeasure(t, 0.9), labelObsN(8, true), threshold, minAgreement, slack)
		if v.pass {
			t.Fatal("diverged candidate passed the gate")
		}
		if v.reason != "candidate validation RMSE regressed past incumbent plus slack" {
			t.Errorf("reason = %q", v.reason)
		}
	})

	t.Run("agreement-floor", func(t *testing.T) {
		// Mixed labels make the two models' RMSEs identical (0.4/0.6
		// errors mirrored), so the regression guard passes — but the
		// candidate discards everything the incumbent accepts.
		validation := append(labelObsN(4, true), labelObsN(4, false)...)
		v := gate(biasMeasure(t, 0.4), biasMeasure(t, 0.6), validation, threshold, minAgreement, slack)
		if v.pass {
			t.Fatal("disagreeing candidate passed the gate")
		}
		if v.reason != "accept/discard agreement below floor" {
			t.Errorf("reason = %q", v.reason)
		}
		if v.agreement != 0 {
			t.Errorf("agreement = %v, want 0", v.agreement)
		}
		if math.Abs(v.candidateRMSE-v.incumbentRMSE) > 1e-9 {
			t.Errorf("RMSEs differ: %v vs %v", v.candidateRMSE, v.incumbentRMSE)
		}
	})
}
