package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cqm/internal/sensor"
)

// smallSet builds a deterministic labelled set for unit tests.
func smallSet(n int) *Set {
	s := &Set{}
	contexts := sensor.AllContexts()
	for i := 0; i < n; i++ {
		s.Append(Sample{
			Cues:  []float64{float64(i), float64(i) * 0.5, 1},
			Truth: contexts[i%3],
			Pure:  i%4 != 0,
		})
	}
	return s
}

func TestSetBasics(t *testing.T) {
	s := smallSet(9)
	if s.Len() != 9 {
		t.Fatalf("Len = %d", s.Len())
	}
	counts := s.Counts()
	for _, c := range sensor.AllContexts() {
		if counts[c] != 3 {
			t.Errorf("count[%v] = %d, want 3", c, counts[c])
		}
	}
	if got := s.Labels(); got[0] != sensor.ContextLying.ID() {
		t.Errorf("Labels[0] = %d", got[0])
	}
	if got := s.Cues(); len(got) != 9 || len(got[0]) != 3 {
		t.Error("Cues shape wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := smallSet(3)
	c := s.Clone()
	c.Samples[0].Cues[0] = 999
	c.Samples[0].Truth = sensor.ContextPlaying
	if s.Samples[0].Cues[0] == 999 {
		t.Error("Clone shares cue storage")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a := smallSet(20)
	b := smallSet(20)
	a.Shuffle(42)
	b.Shuffle(42)
	for i := range a.Samples {
		if a.Samples[i].Cues[0] != b.Samples[i].Cues[0] {
			t.Fatal("same seed shuffled differently")
		}
	}
	c := smallSet(20)
	c.Shuffle(43)
	same := true
	for i := range a.Samples {
		if a.Samples[i].Cues[0] != c.Samples[i].Cues[0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical shuffle")
	}
}

func TestSplitFractions(t *testing.T) {
	s := smallSet(100)
	train, check, test, err := s.Split(0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 60 || check.Len() != 20 || test.Len() != 20 {
		t.Errorf("split sizes %d/%d/%d", train.Len(), check.Len(), test.Len())
	}
	// Order preserved.
	if train.Samples[0].Cues[0] != 0 || test.Samples[0].Cues[0] != 80 {
		t.Error("split did not preserve order")
	}
}

func TestSplitErrors(t *testing.T) {
	s := smallSet(10)
	if _, _, _, err := (&Set{}).Split(0.5, 0.2); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	for _, tc := range [][2]float64{{0, 0.2}, {0.9, 0.2}, {-0.1, 0.5}, {0.5, -0.1}} {
		if _, _, _, err := s.Split(tc[0], tc[1]); !errors.Is(err, ErrBadSplit) {
			t.Errorf("split(%v,%v): %v", tc[0], tc[1], err)
		}
	}
	tiny := smallSet(2)
	if _, _, _, err := tiny.Split(0.1, 0.1); !errors.Is(err, ErrBadSplit) {
		t.Errorf("tiny: %v", err)
	}
}

func TestSplitPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 20 + int(uint64(seed)%80)
		s := smallSet(n)
		s.Shuffle(seed)
		train, check, test, err := s.Split(0.5, 0.25)
		if err != nil {
			return false
		}
		return train.Len()+check.Len()+test.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKFoldPartition(t *testing.T) {
	s := smallSet(23) // deliberately not divisible by k
	folds, err := s.KFold(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := make(map[float64]int)
	for _, f := range folds {
		if f.Train.Len()+f.Test.Len() != 23 {
			t.Fatalf("fold sizes %d + %d != 23", f.Train.Len(), f.Test.Len())
		}
		for _, smp := range f.Test.Samples {
			seen[smp.Cues[0]]++
		}
	}
	if len(seen) != 23 {
		t.Fatalf("test folds cover %d distinct samples, want 23", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("sample %v appears in %d test folds", id, n)
		}
	}
	// Original untouched.
	if s.Samples[0].Cues[0] != 0 {
		t.Error("KFold mutated the receiver")
	}
}

func TestKFoldErrors(t *testing.T) {
	s := smallSet(4)
	if _, err := (&Set{}).KFold(2, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	if _, err := s.KFold(1, 1); !errors.Is(err, ErrBadSplit) {
		t.Errorf("k=1: %v", err)
	}
	if _, err := s.KFold(5, 1); !errors.Is(err, ErrBadSplit) {
		t.Errorf("k>n: %v", err)
	}
}

func TestGenerateFromScenarios(t *testing.T) {
	set, err := Generate(GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 26 s at 100 Hz → 2600 readings → 26 windows.
	if set.Len() != 26 {
		t.Errorf("Len = %d, want 26", set.Len())
	}
	counts := set.Counts()
	for _, c := range sensor.AllContexts() {
		if counts[c] == 0 {
			t.Errorf("context %v missing from generated set", c)
		}
	}
	impure := 0
	for _, smp := range set.Samples {
		if len(smp.Cues) != 3 {
			t.Fatalf("cue dim %d", len(smp.Cues))
		}
		if !smp.Pure {
			impure++
		}
	}
	if impure == 0 {
		t.Error("no transition windows generated — ambiguity missing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenerateConfig{
		Scenarios: []*sensor.Scenario{sensor.OfficeSession(sensor.Style{})},
		Seed:      9,
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Samples {
		for j := range a.Samples[i].Cues {
			if a.Samples[i].Cues[j] != b.Samples[i].Cues[j] {
				t.Fatal("same seed generated different cues")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenerateConfig{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("no scenarios: %v", err)
	}
	short := &sensor.Scenario{Segments: []sensor.Segment{{Context: sensor.ContextLying, Duration: 0.1}}}
	if _, err := Generate(GenerateConfig{Scenarios: []*sensor.Scenario{short}, WindowSize: 1000}); err == nil {
		t.Error("scenario shorter than a window accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := smallSet(12)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip lost samples: %d vs %d", back.Len(), s.Len())
	}
	for i := range s.Samples {
		a, b := s.Samples[i], back.Samples[i]
		if a.Truth != b.Truth || a.Pure != b.Pure {
			t.Fatalf("sample %d labels differ: %+v vs %+v", i, a, b)
		}
		for j := range a.Cues {
			if a.Cues[j] != b.Cues[j] {
				t.Fatalf("sample %d cue %d differs", i, j)
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if err := (&Set{}).WriteCSV(&bytes.Buffer{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty write: %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("")); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty read: %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("cue_0,class,pure\nnotanumber,1,1\n")); err == nil {
		t.Error("bad cue accepted")
	}
	if _, err := ReadCSV(strings.NewReader("cue_0,class,pure\n0.5,xyz,1\n")); err == nil {
		t.Error("bad class accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("too-narrow header accepted")
	}
}
