// Package dataset manages the labelled cue-vector sets the CQM pipeline
// trains and evaluates on: generation from scripted sensing scenarios,
// deterministic shuffling and splitting, and CSV persistence.
//
// The paper works with three labelled sets: a training set for the
// automated FIS construction, a check set for the hybrid-learning early
// stop, and a test set (24 points in the paper's evaluation) for the
// statistical analysis. Generate and Split reproduce that structure from
// seeded simulations.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"

	"cqm/internal/feature"
	"cqm/internal/sensor"
)

// Dataset errors.
var (
	// ErrEmpty reports an operation over an empty data set.
	ErrEmpty = errors.New("dataset: empty data set")
	// ErrBadSplit reports invalid split fractions.
	ErrBadSplit = errors.New("dataset: invalid split fractions")
)

// Sample is one labelled observation.
type Sample struct {
	// Cues is the extracted cue vector (the classifier's input v_C).
	Cues []float64
	// Truth is the ground-truth context.
	Truth sensor.Context
	// Pure reports whether the source window was transition-free.
	Pure bool
}

// Set is an ordered collection of samples.
type Set struct {
	Samples []Sample
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Samples) }

// Append adds samples to the set.
func (s *Set) Append(samples ...Sample) {
	s.Samples = append(s.Samples, samples...)
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := &Set{Samples: make([]Sample, len(s.Samples))}
	for i, smp := range s.Samples {
		cues := make([]float64, len(smp.Cues))
		copy(cues, smp.Cues)
		out.Samples[i] = Sample{Cues: cues, Truth: smp.Truth, Pure: smp.Pure}
	}
	return out
}

// Shuffle permutes the samples in place with the given seed.
func (s *Set) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(s.Samples), func(i, j int) {
		s.Samples[i], s.Samples[j] = s.Samples[j], s.Samples[i]
	})
}

// Counts returns the number of samples per ground-truth context.
func (s *Set) Counts() map[sensor.Context]int {
	out := make(map[sensor.Context]int)
	for _, smp := range s.Samples {
		out[smp.Truth]++
	}
	return out
}

// Cues returns all cue vectors as a matrix (rows alias the samples).
func (s *Set) Cues() [][]float64 {
	out := make([][]float64, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.Cues
	}
	return out
}

// Labels returns all ground-truth class identifiers.
func (s *Set) Labels() []int {
	out := make([]int, len(s.Samples))
	for i, smp := range s.Samples {
		out[i] = smp.Truth.ID()
	}
	return out
}

// Split cuts the set into train/check/test subsets by fraction. The
// fractions must be positive and sum to at most 1; the test subset takes
// the remainder. Order is preserved — shuffle first for random splits.
func (s *Set) Split(trainFrac, checkFrac float64) (train, check, test *Set, err error) {
	if s.Len() == 0 {
		return nil, nil, nil, ErrEmpty
	}
	if trainFrac <= 0 || checkFrac < 0 || trainFrac+checkFrac >= 1 {
		return nil, nil, nil, fmt.Errorf("%w: train %v + check %v", ErrBadSplit, trainFrac, checkFrac)
	}
	n := s.Len()
	nTrain := int(float64(n) * trainFrac)
	nCheck := int(float64(n) * checkFrac)
	if nTrain == 0 || n-nTrain-nCheck == 0 {
		return nil, nil, nil, fmt.Errorf("%w: %d samples leave an empty subset", ErrBadSplit, n)
	}
	train = &Set{Samples: append([]Sample(nil), s.Samples[:nTrain]...)}
	check = &Set{Samples: append([]Sample(nil), s.Samples[nTrain:nTrain+nCheck]...)}
	test = &Set{Samples: append([]Sample(nil), s.Samples[nTrain+nCheck:]...)}
	return train, check, test, nil
}

// Fold is one train/test partition of a k-fold split.
type Fold struct {
	Train, Test *Set
}

// KFold partitions the set into k folds after a seeded shuffle of a copy
// (the receiver is untouched). Every sample appears in exactly one test
// fold; fold sizes differ by at most one.
func (s *Set) KFold(k int, seed int64) ([]Fold, error) {
	if s.Len() == 0 {
		return nil, ErrEmpty
	}
	if k < 2 || k > s.Len() {
		return nil, fmt.Errorf("%w: k=%d for %d samples", ErrBadSplit, k, s.Len())
	}
	shuffled := s.Clone()
	shuffled.Shuffle(seed)
	folds := make([]Fold, k)
	n := shuffled.Len()
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		test := &Set{Samples: append([]Sample(nil), shuffled.Samples[lo:hi]...)}
		train := &Set{Samples: make([]Sample, 0, n-(hi-lo))}
		train.Samples = append(train.Samples, shuffled.Samples[:lo]...)
		train.Samples = append(train.Samples, shuffled.Samples[hi:]...)
		folds[i] = Fold{Train: train, Test: test}
	}
	return folds, nil
}

// GenerateConfig parameterizes scenario-driven data generation.
type GenerateConfig struct {
	// Scenarios are run in order; each contributes its windows.
	Scenarios []*sensor.Scenario
	// WindowSize is the number of readings per cue window. Default 100
	// (one second at the default rate).
	WindowSize int
	// WindowStep is the hop between windows. Default: WindowSize.
	WindowStep int
	// Pipeline extracts cues; nil uses the paper's per-axis stddev.
	Pipeline *feature.Pipeline
	// Seed drives all randomness.
	Seed int64
}

// Generate runs every scenario and windows the recordings into one
// labelled set.
func Generate(cfg GenerateConfig) (*Set, error) {
	if len(cfg.Scenarios) == 0 {
		return nil, fmt.Errorf("%w: no scenarios", ErrEmpty)
	}
	size := cfg.WindowSize
	if size == 0 {
		size = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	windower := feature.Windower{Size: size, Step: cfg.WindowStep, Pipeline: cfg.Pipeline}
	out := &Set{}
	for i, sc := range cfg.Scenarios {
		readings, err := sc.Run(rng)
		if err != nil {
			return nil, fmt.Errorf("dataset: scenario %d: %w", i, err)
		}
		windows, err := windower.Slide(readings)
		if err != nil {
			return nil, fmt.Errorf("dataset: scenario %d: %w", i, err)
		}
		for _, w := range windows {
			out.Append(Sample{Cues: w.Cues, Truth: w.Truth, Pure: w.Pure})
		}
	}
	if out.Len() == 0 {
		return nil, fmt.Errorf("%w: scenarios too short for window size %d", ErrEmpty, size)
	}
	return out, nil
}
