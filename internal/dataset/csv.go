package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cqm/internal/sensor"
)

// WriteCSV writes the set with a header row. Columns: cue_0..cue_{n−1},
// class (numeric identifier), pure (0/1).
func (s *Set) WriteCSV(w io.Writer) error {
	if s.Len() == 0 {
		return ErrEmpty
	}
	cw := csv.NewWriter(w)
	n := len(s.Samples[0].Cues)
	header := make([]string, 0, n+2)
	for i := 0; i < n; i++ {
		header = append(header, "cue_"+strconv.Itoa(i))
	}
	header = append(header, "class", "pure")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	row := make([]string, n+2)
	for idx, smp := range s.Samples {
		if len(smp.Cues) != n {
			return fmt.Errorf("dataset: sample %d has %d cues, want %d", idx, len(smp.Cues), n)
		}
		for i, c := range smp.Cues {
			row[i] = strconv.FormatFloat(c, 'g', -1, 64)
		}
		row[n] = strconv.Itoa(smp.Truth.ID())
		pure := "0"
		if smp.Pure {
			pure = "1"
		}
		row[n+1] = pure
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing sample %d: %w", idx, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing CSV: %w", err)
	}
	return nil
}

// ReadCSV parses a set written by WriteCSV.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, ErrEmpty
	}
	header := records[0]
	if len(header) < 3 {
		return nil, fmt.Errorf("dataset: header has %d columns, want >= 3", len(header))
	}
	n := len(header) - 2
	out := &Set{}
	for lineNo, rec := range records[1:] {
		if len(rec) != n+2 {
			return nil, fmt.Errorf("dataset: line %d has %d columns, want %d", lineNo+2, len(rec), n+2)
		}
		cues := make([]float64, n)
		for i := 0; i < n; i++ {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d cue %d: %w", lineNo+2, i, err)
			}
			cues[i] = v
		}
		classID, err := strconv.Atoi(rec[n])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d class: %w", lineNo+2, err)
		}
		out.Append(Sample{
			Cues:  cues,
			Truth: sensor.ContextByID(classID),
			Pure:  rec[n+1] == "1",
		})
	}
	return out, nil
}
