package fault

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cqm/internal/obs"
	"cqm/internal/sensor"
)

// record produces a deterministic synthetic stream for fault tests.
func record(t *testing.T, seed int64, duration float64) []sensor.Reading {
	t.Helper()
	readings, err := sensor.OfficeSession(sensor.DefaultStyle()).Run(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if duration > 0 {
		cut := readings[:0:0]
		for _, r := range readings {
			if r.T < duration {
				cut = append(cut, r)
			}
		}
		readings = cut
	}
	return readings
}

func TestStuckAxisFreezesValue(t *testing.T) {
	readings := record(t, 1, 4)
	f := &StuckAxis{Axis: AxisY, Start: 1, Duration: 2}
	out, err := f.Apply(readings, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Affected() == 0 {
		t.Fatal("no samples affected")
	}
	t0 := readings[0].T
	var held float64
	seen := false
	for i, r := range out {
		in := r.T >= t0+1 && r.T < t0+3
		if in {
			if !seen {
				held = r.Accel.Y
				seen = true
			}
			if r.Accel.Y != held {
				t.Fatalf("t=%v: stuck axis moved: %v != %v", r.T, r.Accel.Y, held)
			}
			continue
		}
		if r.Accel.X != readings[i].Accel.X || r.Accel.Z != readings[i].Accel.Z {
			t.Fatalf("t=%v: untouched axes changed", r.T)
		}
	}
	// The input must not be mutated.
	if reflect.DeepEqual(out, readings) {
		t.Fatal("fault had no visible effect")
	}
}

func TestStuckAxisZeroDurationHoldsToEnd(t *testing.T) {
	readings := record(t, 2, 3)
	f := &StuckAxis{Axis: AxisX, Start: 1}
	out, err := f.Apply(readings, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := out[len(out)-1]
	if last.T < readings[0].T+1 {
		t.Skip("recording shorter than fault onset")
	}
	first := -1
	for i, r := range out {
		if r.T >= readings[0].T+1 {
			first = i
			break
		}
	}
	for _, r := range out[first:] {
		if r.Accel.X != out[first].Accel.X {
			t.Fatalf("axis moved after open-ended stuck fault")
		}
	}
}

func TestStuckAxisValidation(t *testing.T) {
	if _, err := (&StuckAxis{Axis: 7}).Apply(nil, nil); err == nil {
		t.Error("bad axis accepted")
	}
	if _, err := (&StuckAxis{Axis: AxisX, Start: -1}).Apply(nil, nil); err == nil {
		t.Error("negative start accepted")
	}
}

func TestSaturationClips(t *testing.T) {
	readings := record(t, 3, 3)
	f := &Saturation{Gain: 10, Limit: 1}
	out, err := f.Apply(readings, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Affected() == 0 {
		t.Fatal("gain 10 clipped nothing")
	}
	for _, r := range out {
		for _, v := range []float64{r.Accel.X, r.Accel.Y, r.Accel.Z} {
			if math.Abs(v) > 1 {
				t.Fatalf("sample %v beyond limit", v)
			}
		}
	}
	if _, err := (&Saturation{Gain: -1}).Apply(readings, nil); err == nil {
		t.Error("negative gain accepted")
	}
}

func TestDropoutRemovesGap(t *testing.T) {
	readings := record(t, 4, 4)
	f := &Dropout{Start: 1, Duration: 0.5}
	out, err := f.Apply(readings, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(readings) || f.Affected() != len(readings)-len(out) {
		t.Fatalf("gap accounting: %d -> %d, affected %d", len(readings), len(out), f.Affected())
	}
	t0 := readings[0].T
	for _, r := range out {
		if r.T >= t0+1 && r.T < t0+1.5 {
			t.Fatalf("sample at t=%v inside the gap survived", r.T)
		}
	}
	if _, err := (&Dropout{Duration: 0}).Apply(readings, nil); err == nil {
		t.Error("zero-duration dropout accepted")
	}
}

func TestSpikeNoiseDeterministicAndClipped(t *testing.T) {
	readings := record(t, 5, 3)
	f := &SpikeNoise{Prob: 0.2, Amplitude: 5, Limit: 2}
	out1, err := f.Apply(readings, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	n1 := f.Affected()
	out2, err := f.Apply(readings, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out1, out2) || n1 != f.Affected() {
		t.Fatal("identical seed produced different spike schedules")
	}
	if n1 == 0 {
		t.Fatal("no spikes at prob 0.2")
	}
	for _, r := range out1 {
		for _, v := range []float64{r.Accel.X, r.Accel.Y, r.Accel.Z} {
			if math.Abs(v) > 2 {
				t.Fatalf("spiked sample %v beyond limit", v)
			}
		}
	}
	if _, err := (&SpikeNoise{Prob: 2}).Apply(readings, nil); err == nil {
		t.Error("probability 2 accepted")
	}
}

func TestClockDriftStretchesTimeBase(t *testing.T) {
	readings := record(t, 6, 2)
	f := &ClockDrift{Rate: 0.5}
	out, err := f.Apply(readings, nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := readings[0].T
	for i, r := range out {
		want := t0 + (readings[i].T-t0)*1.5
		if math.Abs(r.T-want) > 1e-12 {
			t.Fatalf("sample %d: t=%v want %v", i, r.T, want)
		}
	}
	if _, err := (&ClockDrift{Rate: -1}).Apply(readings, nil); err == nil {
		t.Error("rate -1 accepted")
	}
}

func TestInjectorDeterministicScheduleAndCounts(t *testing.T) {
	readings := record(t, 7, 6)
	build := func() *Injector {
		return NewInjector(42,
			&StuckAxis{Axis: AxisZ, Start: 1, Duration: 1},
			&SpikeNoise{Prob: 0.1},
			&Dropout{Start: 3, Duration: 0.5},
		)
	}
	a, b := build(), build()
	outA, err := a.Apply(readings)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := b.Apply(readings)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(outA, outB) {
		t.Fatal("identical injector seeds produced different streams")
	}
	if !reflect.DeepEqual(a.Counts(), b.Counts()) {
		t.Fatalf("count mismatch: %v vs %v", a.Counts(), b.Counts())
	}
	for _, name := range []string{"stuck-axis", "spike", "dropout"} {
		if a.Counts()[name] == 0 {
			t.Errorf("fault %s injected nothing", name)
		}
	}
	if r := a.Render(); !strings.Contains(r, "stuck-axis") || !strings.Contains(r, "dropout") {
		t.Errorf("Render missing fault classes:\n%s", r)
	}
}

func TestInjectorInstrumented(t *testing.T) {
	readings := record(t, 8, 4)
	reg := obs.NewRegistry()
	in := NewInjector(1, &SpikeNoise{Prob: 0.3})
	in.Instrument(reg)
	if _, err := in.Apply(readings); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricInjected, "fault", "spike").Value(); got != int64(in.Counts()["spike"]) {
		t.Errorf("metric %d != count %d", got, in.Counts()["spike"])
	}
	in.Instrument(nil) // off again: must not panic
	if _, err := in.Apply(readings); err != nil {
		t.Fatal(err)
	}
	bad := NewInjector(1, &SpikeNoise{Prob: 9})
	if _, err := bad.Apply(readings); err == nil {
		t.Error("invalid fault in schedule accepted")
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	g := &GilbertElliott{PGoodBad: 0.05, PBadGood: 0.45, LossBad: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := g.StationaryLoss()
	if math.Abs(want-0.1) > 1e-9 {
		t.Fatalf("stationary loss %v, want 0.1", want)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 200000
	drops := 0
	for i := 0; i < n; i++ {
		if g.Drop(rng) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical loss %v, want %v ± 0.01", got, want)
	}
	if g.Drops() != drops || g.Decisions() != n {
		t.Errorf("accounting: drops %d/%d decisions %d/%d", g.Drops(), drops, g.Decisions(), n)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// LossBad=1, LossGood=0: every loss run corresponds to a bad-state
	// dwell, whose mean length is 1/PBadGood = 4 deliveries.
	g := &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.25, LossBad: 1}
	rng := rand.New(rand.NewSource(12))
	runs, runLen, cur := 0, 0, 0
	for i := 0; i < 100000; i++ {
		if g.Drop(rng) {
			cur++
			continue
		}
		if cur > 0 {
			runs++
			runLen += cur
			cur = 0
		}
	}
	if runs == 0 {
		t.Fatal("no loss bursts observed")
	}
	mean := float64(runLen) / float64(runs)
	if mean < 3 || mean > 5 {
		t.Errorf("mean burst length %v, want ≈4", mean)
	}
}

func TestGilbertElliottValidateAndInstrument(t *testing.T) {
	if err := (&GilbertElliott{PGoodBad: 1.5}).Validate(); err == nil {
		t.Error("probability 1.5 accepted")
	}
	g := &GilbertElliott{PGoodBad: 1, PBadGood: 0, LossBad: 1}
	reg := obs.NewRegistry()
	g.Instrument(reg)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10; i++ {
		g.Drop(rng)
	}
	if !g.Bad() {
		t.Error("chain with PGoodBad=1, PBadGood=0 left the bad state")
	}
	if got := reg.Counter(MetricChannelDrops, "state", "bad").Value(); got == 0 {
		t.Error("bad-state drops not counted")
	}
	g.Instrument(nil)
	g.Drop(rng) // must not panic uninstrumented
}

func TestBurstLossTargetsRate(t *testing.T) {
	for _, rate := range []float64{0, 0.05, 0.1, 0.3} {
		g := BurstLoss(rate)
		if err := g.Validate(); err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if got := g.StationaryLoss(); math.Abs(got-rate) > 1e-9 {
			t.Errorf("rate %v: stationary loss %v", rate, got)
		}
	}
	if g := BurstLoss(2); g.StationaryLoss() > 0.81 {
		t.Error("rate clamp missing")
	}
	if g := BurstLoss(-1); g.StationaryLoss() != 0 {
		t.Error("negative rate not clamped to 0")
	}
}

func TestTruncateCutsFrames(t *testing.T) {
	tr := &Truncate{Prob: 1}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr.Instrument(reg)
	frame := make([]byte, 22)
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 50; i++ {
		out := tr.Corrupt(frame, rng)
		if len(out) >= len(frame) {
			t.Fatalf("frame not truncated: %d bytes", len(out))
		}
	}
	if tr.Truncated() != 50 {
		t.Errorf("truncated %d, want 50", tr.Truncated())
	}
	if got := reg.Counter(MetricFramesTruncated).Value(); got != 50 {
		t.Errorf("metric %d, want 50", got)
	}
	keep := &Truncate{Prob: 0}
	if out := keep.Corrupt(frame, rng); len(out) != len(frame) {
		t.Error("prob 0 still truncated")
	}
	if err := (&Truncate{Prob: -1}).Validate(); err == nil {
		t.Error("negative probability accepted")
	}
	tr.Instrument(nil)
	tr.Corrupt(frame, rng) // nil metrics must not panic
	if out := tr.Corrupt(nil, rng); out != nil {
		t.Error("empty frame mishandled")
	}
}
