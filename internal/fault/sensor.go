package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"cqm/internal/obs"
	"cqm/internal/sensor"
)

// Fault-model errors.
var (
	// ErrBadFault reports an invalid fault configuration.
	ErrBadFault = errors.New("fault: invalid fault configuration")
)

// Axis identifiers for axis-scoped sensor faults.
const (
	// AxisX selects the accelerometer's X axis.
	AxisX = 0
	// AxisY selects the accelerometer's Y axis.
	AxisY = 1
	// AxisZ selects the accelerometer's Z axis.
	AxisZ = 2
)

// SensorFault perturbs a recorded accelerometer stream. Apply returns the
// perturbed readings (the input is never mutated) together with the number
// of samples the fault touched; all randomness flows through rng.
type SensorFault interface {
	// Name identifies the fault class in metrics and reports.
	Name() string
	// Apply returns the perturbed copy of readings and the number of
	// affected samples.
	Apply(readings []sensor.Reading, rng *rand.Rand) ([]sensor.Reading, error)
	// Affected returns the number of samples the most recent Apply touched.
	Affected() int
}

// StuckAxis freezes one axis at the value it held when the fault began —
// the classic stuck-at sensor failure. Start is measured in seconds from
// the first reading; a Duration of 0 holds the axis to the end of the
// recording.
type StuckAxis struct {
	// Axis is the frozen axis (AxisX, AxisY, or AxisZ).
	Axis int
	// Start is the fault onset in seconds after the first reading.
	Start float64
	// Duration is the fault length in seconds; 0 means until the end.
	Duration float64

	affected int
}

// Name returns "stuck-axis".
func (f *StuckAxis) Name() string { return "stuck-axis" }

// Affected returns the number of samples the most recent Apply touched.
func (f *StuckAxis) Affected() int { return f.affected }

// Apply freezes the configured axis over the fault interval.
func (f *StuckAxis) Apply(readings []sensor.Reading, _ *rand.Rand) ([]sensor.Reading, error) {
	if f.Axis < AxisX || f.Axis > AxisZ {
		return nil, fmt.Errorf("%w: stuck axis %d", ErrBadFault, f.Axis)
	}
	if f.Start < 0 || f.Duration < 0 {
		return nil, fmt.Errorf("%w: stuck start %v duration %v", ErrBadFault, f.Start, f.Duration)
	}
	out := cloneReadings(readings)
	f.affected = 0
	if len(out) == 0 {
		return out, nil
	}
	from := out[0].T + f.Start
	to := from + f.Duration
	var held float64
	holding := false
	for i := range out {
		t := out[i].T
		if t < from || (f.Duration > 0 && t >= to) {
			continue
		}
		if !holding {
			held = axisValue(out[i].Accel, f.Axis)
			holding = true
		}
		setAxis(&out[i].Accel, f.Axis, held)
		f.affected++
	}
	return out, nil
}

// Saturation scales the whole stream by Gain and clips it at ±Limit —
// an analog front end driven past its measurement range, producing the
// flat-topped plateaus real over-range recordings show.
type Saturation struct {
	// Gain multiplies every sample before clipping. Default 1.
	Gain float64
	// Limit is the clipping rail in g. Default 2 (the accelerometer's
	// default RangeG).
	Limit float64

	affected int
}

// Name returns "saturation".
func (f *Saturation) Name() string { return "saturation" }

// Affected returns the number of samples the most recent Apply clipped.
func (f *Saturation) Affected() int { return f.affected }

// Apply scales and clips every sample; affected counts clipped samples.
func (f *Saturation) Apply(readings []sensor.Reading, _ *rand.Rand) ([]sensor.Reading, error) {
	gain := f.Gain
	if gain == 0 {
		gain = 1
	}
	limit := f.Limit
	if limit == 0 {
		limit = 2
	}
	if gain < 0 || limit < 0 {
		return nil, fmt.Errorf("%w: saturation gain %v limit %v", ErrBadFault, gain, limit)
	}
	out := cloneReadings(readings)
	f.affected = 0
	for i := range out {
		clipped := false
		for axis := AxisX; axis <= AxisZ; axis++ {
			v, c := clip(gain*axisValue(out[i].Accel, axis), limit)
			setAxis(&out[i].Accel, axis, v)
			clipped = clipped || c
		}
		if clipped {
			f.affected++
		}
	}
	return out, nil
}

// Dropout removes every sample in [Start, Start+Duration) — a sensing or
// sampling outage that leaves a gap in the stream. Start is measured in
// seconds from the first reading.
type Dropout struct {
	// Start is the gap onset in seconds after the first reading.
	Start float64
	// Duration is the gap length in seconds.
	Duration float64

	affected int
}

// Name returns "dropout".
func (f *Dropout) Name() string { return "dropout" }

// Affected returns the number of samples the most recent Apply removed.
func (f *Dropout) Affected() int { return f.affected }

// Apply removes the samples inside the gap.
func (f *Dropout) Apply(readings []sensor.Reading, _ *rand.Rand) ([]sensor.Reading, error) {
	if f.Start < 0 || f.Duration <= 0 {
		return nil, fmt.Errorf("%w: dropout start %v duration %v", ErrBadFault, f.Start, f.Duration)
	}
	f.affected = 0
	if len(readings) == 0 {
		return cloneReadings(readings), nil
	}
	from := readings[0].T + f.Start
	to := from + f.Duration
	out := make([]sensor.Reading, 0, len(readings))
	for _, r := range readings {
		if r.T >= from && r.T < to {
			f.affected++
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

// SpikeNoise adds impulsive noise: each sample is independently hit with
// probability Prob, adding ±Amplitude (random sign) before clipping at
// ±Limit — electrical glitches and mechanical shocks.
type SpikeNoise struct {
	// Prob is the per-sample spike probability.
	Prob float64
	// Amplitude is the spike magnitude in g. Default 3.
	Amplitude float64
	// Limit clips the spiked value at ±Limit. Default 2.
	Limit float64

	affected int
}

// Name returns "spike".
func (f *SpikeNoise) Name() string { return "spike" }

// Affected returns the number of samples the most recent Apply spiked.
func (f *SpikeNoise) Affected() int { return f.affected }

// Apply draws one uniform variate per sample (and one sign per spike), so
// the schedule is a pure function of the RNG stream.
func (f *SpikeNoise) Apply(readings []sensor.Reading, rng *rand.Rand) ([]sensor.Reading, error) {
	if f.Prob < 0 || f.Prob > 1 {
		return nil, fmt.Errorf("%w: spike probability %v", ErrBadFault, f.Prob)
	}
	amp := f.Amplitude
	if amp == 0 {
		amp = 3
	}
	limit := f.Limit
	if limit == 0 {
		limit = 2
	}
	if amp < 0 || limit < 0 {
		return nil, fmt.Errorf("%w: spike amplitude %v limit %v", ErrBadFault, amp, limit)
	}
	out := cloneReadings(readings)
	f.affected = 0
	for i := range out {
		if rng.Float64() >= f.Prob {
			continue
		}
		delta := amp
		if rng.Float64() < 0.5 {
			delta = -amp
		}
		for axis := AxisX; axis <= AxisZ; axis++ {
			v, _ := clip(axisValue(out[i].Accel, axis)+delta, limit)
			setAxis(&out[i].Accel, axis, v)
		}
		f.affected++
	}
	return out, nil
}

// ClockDrift stretches the time base: t' = t0 + (t−t0)·(1+Rate), the
// slow oscillator error of a cheap node whose samples arrive progressively
// late (positive Rate) or early (negative Rate).
type ClockDrift struct {
	// Rate is the fractional frequency error; 0.1 means every second of
	// real time is stamped as 1.1 s.
	Rate float64

	affected int
}

// Name returns "clock-drift".
func (f *ClockDrift) Name() string { return "clock-drift" }

// Affected returns the number of samples the most recent Apply re-stamped.
func (f *ClockDrift) Affected() int { return f.affected }

// Apply re-stamps every reading; the first keeps its original time.
func (f *ClockDrift) Apply(readings []sensor.Reading, _ *rand.Rand) ([]sensor.Reading, error) {
	if f.Rate <= -1 {
		return nil, fmt.Errorf("%w: clock drift rate %v", ErrBadFault, f.Rate)
	}
	out := cloneReadings(readings)
	f.affected = 0
	if len(out) == 0 {
		return out, nil
	}
	t0 := out[0].T
	for i := range out {
		out[i].T = t0 + (out[i].T-t0)*(1+f.Rate)
		f.affected++
	}
	return out, nil
}

// MetricInjected counts samples touched by injected sensor faults, per
// fault class.
const MetricInjected = "fault_injected_samples_total"

// Injector applies a fixed schedule of sensor faults to recordings. All
// randomness derives from the seed given at construction, so the same
// injector configuration perturbs the same recording identically on every
// run — the determinism contract the fault sweeps rely on.
type Injector struct {
	rng    *rand.Rand
	faults []SensorFault
	counts map[string]int
	met    map[string]*obs.Counter
}

// NewInjector returns an injector applying the faults in order, drawing
// randomness from the given seed.
func NewInjector(seed int64, faults ...SensorFault) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		faults: faults,
		counts: make(map[string]int),
	}
}

// Instrument registers one injected-samples counter per fault class on
// reg; a nil registry turns instrumentation off.
func (in *Injector) Instrument(reg *obs.Registry) {
	if reg == nil {
		in.met = nil
		return
	}
	reg.Help(MetricInjected, "Samples touched by injected sensor faults, by fault class.")
	in.met = make(map[string]*obs.Counter, len(in.faults))
	for _, f := range in.faults {
		if _, ok := in.met[f.Name()]; !ok {
			in.met[f.Name()] = reg.Counter(MetricInjected, "fault", f.Name())
		}
	}
}

// Apply runs the full fault schedule over the readings, accumulating the
// per-class injection counts.
func (in *Injector) Apply(readings []sensor.Reading) ([]sensor.Reading, error) {
	out := readings
	for _, f := range in.faults {
		var err error
		out, err = f.Apply(out, in.rng)
		if err != nil {
			return nil, err
		}
		in.counts[f.Name()] += f.Affected()
		if c, ok := in.met[f.Name()]; ok {
			c.Add(int64(f.Affected()))
		}
	}
	return out, nil
}

// Counts returns the cumulative injected-sample counts by fault class.
func (in *Injector) Counts() map[string]int {
	out := make(map[string]int, len(in.counts))
	for name, n := range in.counts {
		out[name] = n
	}
	return out
}

// Render summarizes the cumulative injection counts, sorted by class name.
func (in *Injector) Render() string {
	names := make([]string, 0, len(in.counts))
	for name := range in.counts {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		out += fmt.Sprintf("  fault %-12s %d samples\n", name+":", in.counts[name])
	}
	return out
}

// cloneReadings copies the slice so fault application never mutates the
// caller's recording.
func cloneReadings(readings []sensor.Reading) []sensor.Reading {
	out := make([]sensor.Reading, len(readings))
	copy(out, readings)
	return out
}

// axisValue extracts one axis from an acceleration sample.
func axisValue(a sensor.Accel, axis int) float64 {
	switch axis {
	case AxisX:
		return a.X
	case AxisY:
		return a.Y
	default:
		return a.Z
	}
}

// setAxis writes one axis of an acceleration sample.
func setAxis(a *sensor.Accel, axis int, v float64) {
	switch axis {
	case AxisX:
		a.X = v
	case AxisY:
		a.Y = v
	default:
		a.Z = v
	}
}

// clip bounds v at ±limit, reporting whether it clipped.
func clip(v, limit float64) (float64, bool) {
	if v > limit {
		return limit, true
	}
	if v < -limit {
		return -limit, true
	}
	return v, false
}
