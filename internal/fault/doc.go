// Package fault is the deterministic fault-injection library of the
// reproduction: composable fault models for the three layers where the
// AwareOffice pipeline can break in the field.
//
//   - Sensor layer: SensorFault implementations perturb recorded
//     accelerometer streams — an axis stuck at its last value, gain
//     saturation clipping at the measurement rails, dropout gaps, spike
//     noise, and clock drift. An Injector applies a fixed fault schedule
//     from a seeded RNG, so every perturbed recording is reproducible.
//   - Frame layer: Truncate cuts encoded Particle frames short in flight,
//     exercising the receiver's length and CRC defenses. It satisfies the
//     awareoffice.FrameFault interface structurally.
//   - Bus layer: GilbertElliott is the classic two-state burst-loss
//     channel; it satisfies awareoffice.LossModel, replacing the i.i.d.
//     per-delivery loss of a plain Link with correlated loss bursts —
//     the regime where the paper's quality filtering must degrade
//     gracefully rather than fall over.
//
// Every model draws randomness exclusively from the *rand.Rand handed to
// it, never from a global source: identical seed and configuration
// produce byte-identical fault schedules, which the repo's seeded-rand
// lint check enforces. Each injected fault increments an obs counter when
// the model is instrumented, so fault pressure is visible on the same
// dashboards as the quality metrics it degrades.
//
// The package deliberately does not import cqm/internal/awareoffice: the
// bus consumes fault models through its own small interfaces, keeping the
// dependency arrow pointing from the simulation to the fault library.
package fault
