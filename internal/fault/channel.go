package fault

import (
	"fmt"
	"math/rand"

	"cqm/internal/obs"
)

// Metric names of the channel-layer fault models.
const (
	// MetricChannelDrops counts deliveries dropped by a burst channel, by
	// channel state.
	MetricChannelDrops = "fault_channel_drops_total"
	// MetricFramesTruncated counts frames cut short in flight.
	MetricFramesTruncated = "fault_frames_truncated_total"
)

// GilbertElliott is the two-state burst-loss channel: a Markov chain over
// a good and a bad state with independent per-state loss probabilities.
// Radio links fail in bursts — interference, a closing door, a passing
// body — not as i.i.d. coin flips, and retransmission policies behave very
// differently under the two regimes. The model satisfies the
// awareoffice.LossModel interface structurally.
//
// The chain is stepped once per delivery decision, so burst lengths are
// measured in deliveries, matching the per-delivery loss semantics of the
// plain Link.
type GilbertElliott struct {
	// PGoodBad is the per-decision probability of entering the bad state.
	PGoodBad float64
	// PBadGood is the per-decision probability of leaving the bad state.
	PBadGood float64
	// LossGood is the drop probability while in the good state.
	LossGood float64
	// LossBad is the drop probability while in the bad state.
	LossBad float64

	bad     bool
	drops   int
	decided int
	metGood *obs.Counter
	metBad  *obs.Counter
}

// Validate checks the channel parameters.
func (g *GilbertElliott) Validate() error {
	for _, p := range []float64{g.PGoodBad, g.PBadGood, g.LossGood, g.LossBad} {
		if p < 0 || p > 1 {
			return fmt.Errorf("%w: Gilbert–Elliott probability %v", ErrBadFault, p)
		}
	}
	return nil
}

// Instrument registers the channel's drop counters (by state) on reg; a
// nil registry turns instrumentation off.
func (g *GilbertElliott) Instrument(reg *obs.Registry) {
	if reg == nil {
		g.metGood, g.metBad = nil, nil
		return
	}
	reg.Help(MetricChannelDrops, "Deliveries dropped by a burst channel, by state.")
	g.metGood = reg.Counter(MetricChannelDrops, "state", "good")
	g.metBad = reg.Counter(MetricChannelDrops, "state", "bad")
}

// Drop steps the chain once and decides whether this delivery is lost.
// Exactly two rng draws are consumed per decision, keeping downstream
// randomness aligned regardless of the outcome.
func (g *GilbertElliott) Drop(rng *rand.Rand) bool {
	transition := rng.Float64()
	if g.bad {
		if transition < g.PBadGood {
			g.bad = false
		}
	} else {
		if transition < g.PGoodBad {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	g.decided++
	if rng.Float64() < p {
		g.drops++
		if g.bad {
			g.metBad.Inc()
		} else {
			g.metGood.Inc()
		}
		return true
	}
	return false
}

// Bad reports whether the channel currently sits in the bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Drops returns the number of deliveries the channel has eaten.
func (g *GilbertElliott) Drops() int { return g.drops }

// Decisions returns the number of Drop decisions taken.
func (g *GilbertElliott) Decisions() int { return g.decided }

// StationaryLoss returns the channel's analytic long-run loss rate:
// π_bad·LossBad + π_good·LossGood with π_bad = PGoodBad/(PGoodBad+PBadGood).
// With both transition probabilities zero the chain never leaves its
// initial (good) state and the rate is LossGood.
func (g *GilbertElliott) StationaryLoss() float64 {
	denom := g.PGoodBad + g.PBadGood
	if denom == 0 {
		return g.LossGood
	}
	piBad := g.PGoodBad / denom
	return piBad*g.LossBad + (1-piBad)*g.LossGood
}

// BurstLoss returns a channel tuned for a target average loss rate
// delivered in bursts: the bad state drops everything, dwells ~4
// deliveries (PBadGood = 0.25), and is entered just often enough that the
// stationary loss equals rate. rate is clamped to [0, 0.8].
func BurstLoss(rate float64) *GilbertElliott {
	if rate < 0 {
		rate = 0
	}
	if rate > 0.8 {
		rate = 0.8
	}
	const pBadGood = 0.25
	// rate = pGoodBad / (pGoodBad + pBadGood) with LossBad = 1 solves to:
	pGoodBad := 0.0
	if rate > 0 {
		pGoodBad = rate * pBadGood / (1 - rate)
	}
	return &GilbertElliott{PGoodBad: pGoodBad, PBadGood: pBadGood, LossBad: 1}
}

// Truncate is a frame-layer fault: with probability Prob an encoded
// Particle frame is cut to a random shorter length before it reaches the
// receiver — a collision or an early carrier loss. Truncated frames fail
// the receiver's length check and are dropped like CRC failures. It
// satisfies the awareoffice.FrameFault interface structurally.
type Truncate struct {
	// Prob is the per-frame truncation probability.
	Prob float64

	truncated int
	met       *obs.Counter
}

// Validate checks the truncation probability.
func (t *Truncate) Validate() error {
	if t.Prob < 0 || t.Prob > 1 {
		return fmt.Errorf("%w: truncate probability %v", ErrBadFault, t.Prob)
	}
	return nil
}

// Instrument registers the truncation counter on reg; a nil registry turns
// instrumentation off.
func (t *Truncate) Instrument(reg *obs.Registry) {
	if reg == nil {
		t.met = nil
		return
	}
	reg.Help(MetricFramesTruncated, "Frames cut short in flight by the truncation fault.")
	t.met = reg.Counter(MetricFramesTruncated)
}

// Corrupt cuts the frame with probability Prob. Exactly one rng draw is
// consumed per unaffected frame, two per truncated one.
func (t *Truncate) Corrupt(frame []byte, rng *rand.Rand) []byte {
	if rng.Float64() >= t.Prob || len(frame) == 0 {
		return frame
	}
	t.truncated++
	t.met.Inc()
	return frame[:rng.Intn(len(frame))]
}

// Truncated returns the number of frames cut so far.
func (t *Truncate) Truncated() int { return t.truncated }
