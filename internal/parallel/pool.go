package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool executes chunked work on a fixed number of goroutines. A Pool is
// immutable after construction (Instrument excepted) and safe for
// concurrent use by multiple callers; a nil *Pool executes serially, so
// call sites can thread an optional pool without guarding.
//
// Workers only changes scheduling, never results: chunk boundaries come
// from Spans and every chunk runs exactly once, so any computation that
// is deterministic per chunk is deterministic under the pool.
type Pool struct {
	workers int
	met     poolMetrics
}

// New returns a pool with the given worker count, following the knob
// convention used across the pipeline configs: 0 asks for one worker per
// GOMAXPROCS slot (auto), 1 is strictly serial (no goroutines are
// spawned), and negative values degrade to serial.
func New(workers int) *Pool {
	switch {
	case workers == 0:
		workers = runtime.GOMAXPROCS(0)
	case workers < 0:
		workers = 1
	}
	return &Pool{workers: workers}
}

// Auto returns a pool for a Workers knob and an input size: like New,
// except the auto setting (workers == 0) degrades to serial when n is
// below cutoff, where goroutine startup would cost more than it saves.
// Explicit worker counts are always honoured so equivalence tests can
// force parallelism on small inputs. The fallback is pure scheduling —
// it cannot change results.
func Auto(workers, n, cutoff int) *Pool {
	if workers == 0 && n < cutoff {
		return New(1)
	}
	return New(workers)
}

// Workers returns the pool's worker count; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForChunks partitions [0, n) into Spans(n, grain) and calls fn exactly
// once per chunk with the chunk's index and span, using up to Workers
// goroutines. Chunks are claimed dynamically, so fn must derive its
// output purely from the chunk (write only state owned by the chunk's
// indices, or return partials merged afterwards — see ReduceOrdered).
//
// With one worker (or a nil pool) everything runs on the calling
// goroutine in chunk order. Cancelling ctx stops workers at the next
// chunk boundary and ForChunks returns ctx.Err(); chunk completion is
// then undefined and the caller must discard any partial output. All
// spawned goroutines have exited by the time ForChunks returns.
//
// Dispatch allocates per batch (span table, worker goroutines), not per
// element; the per-element work is the caller's fn.
//
//cqm:coldpath
func (p *Pool) ForChunks(ctx context.Context, n, grain int, fn func(k int, s Span)) error {
	spans := Spans(n, grain)
	if len(spans) == 0 {
		return ctx.Err()
	}
	workers := p.Workers()
	if workers > len(spans) {
		workers = len(spans)
	}
	met := p.metrics()
	if workers <= 1 {
		met.serialRuns.Inc()
		for k, s := range spans {
			if err := ctx.Err(); err != nil {
				return err
			}
			met.runChunk(k, s, fn)
		}
		return nil
	}
	met.parallelRuns.Inc()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				k := int(next.Add(1) - 1)
				if k >= len(spans) {
					return
				}
				met.runChunk(k, spans[k], fn)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForEach calls fn once per index in [0, n), chunked by grain and run on
// up to Workers goroutines. fn must write only state owned by index i
// (e.g. slot i of an output slice); under that discipline the result is
// bit-identical at every worker count because each element is computed by
// exactly one serial invocation. Cancellation follows ForChunks.
//
// Dispatch allocates per batch (one adapter closure), not per element.
//
//cqm:coldpath
func (p *Pool) ForEach(ctx context.Context, n, grain int, fn func(i int)) error {
	return p.ForChunks(ctx, n, grain, func(_ int, s Span) {
		for i := s.Lo; i < s.Hi; i++ {
			fn(i)
		}
	})
}

// metrics returns the pool's resolved metrics; nil pools report the zero
// value, whose nil metric pointers are no-ops.
func (p *Pool) metrics() poolMetrics {
	if p == nil {
		return poolMetrics{}
	}
	return p.met
}
