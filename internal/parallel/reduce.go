package parallel

import "context"

// ReduceOrdered is the deterministic parallel reduction: compute runs
// once per chunk of [0, n) on the pool (each chunk iterated in ascending
// index order by exactly one goroutine), and the per-chunk partials are
// merged by merge in chunk-index order — never in completion order. The
// chunk partition comes from Spans(n, grain), so for a fixed call site
// the sequence of merge calls, and therefore the floating-point
// association of the reduction, depends only on the input length.
//
// merge runs on the calling goroutine after every chunk has completed.
// On cancellation the error is returned before any merge call and the
// partials are discarded.
func ReduceOrdered[P any](ctx context.Context, p *Pool, n, grain int, compute func(s Span) P, merge func(partial P)) error {
	spans := Spans(n, grain)
	if len(spans) == 0 {
		return ctx.Err()
	}
	partials := make([]P, len(spans))
	if err := p.ForChunks(ctx, n, grain, func(k int, s Span) {
		partials[k] = compute(s)
	}); err != nil {
		return err
	}
	for _, partial := range partials {
		merge(partial)
	}
	return nil
}
