// Package parallel is a small stdlib-only worker-pool layer for the
// pipeline's hot paths, built around one contract: parallel results are
// bit-identical to serial ones.
//
// # The deterministic-reduction contract
//
// Floating-point addition is not associative, so the usual way parallel
// code diverges from serial code is by accumulating partial results in
// completion order — an order the scheduler picks. This package removes
// the scheduler from the numeric result entirely:
//
//   - Chunk boundaries are a pure function of the input shape (length and
//     the call site's grain constant), never of the worker count or of
//     GOMAXPROCS. Spans(n, grain) yields the same partition for a given n
//     on every machine and at every worker count.
//   - Each chunk is processed by exactly one goroutine, iterating its
//     indices in ascending order — the same order the serial loop uses.
//   - Per-chunk partial results are merged in chunk-index order after all
//     chunks complete (ReduceOrdered), never in completion order.
//
// Under this contract the worker count is pure scheduling: Workers=1 and
// Workers=8 run the exact same float operations in the exact same
// association, so their outputs match with == (the property tests in this
// repository assert exactly that).
//
// Elementwise maps (Pool.ForEach) are deterministic for free: each output
// slot is written by exactly one invocation, so only the chunked
// reductions need the contract above.
//
// The zero-worker default asks for GOMAXPROCS workers; call sites guard
// small inputs with Auto, which falls back to serial execution below a
// cutoff — a pure performance decision that cannot change results.
package parallel
