package parallel

import "cqm/internal/obs"

// Metric names exposed by an instrumented pool.
const (
	// MetricRuns counts pool runs by execution mode (serial or parallel).
	MetricRuns = "cqm_parallel_runs_total"
	// MetricChunks counts chunks executed.
	MetricChunks = "cqm_parallel_chunks_total"
	// MetricBusyWorkers gauges the number of chunks being processed right
	// now — the pool's instantaneous occupancy.
	MetricBusyWorkers = "cqm_parallel_busy_workers"
	// MetricChunkSeconds is the per-chunk wall-time distribution.
	MetricChunkSeconds = "cqm_parallel_chunk_seconds"
)

// poolMetrics holds the resolved metric pointers; the zero value (all
// nil) is fully inert, so uninstrumented pools pay only nil checks.
type poolMetrics struct {
	serialRuns   *obs.Counter
	parallelRuns *obs.Counter
	chunks       *obs.Counter
	busy         *obs.Gauge
	chunkTime    *obs.Timer
}

// Instrument registers the pool's runtime metrics — run/chunk counters,
// busy-worker occupancy, and per-chunk timing — on reg, resolving metric
// pointers once so the chunk hot path never touches the registry. A nil
// registry turns instrumentation off again. Instrument must not race
// with in-flight runs; configure the pool before sharing it.
func (p *Pool) Instrument(reg *obs.Registry) {
	if p == nil {
		return
	}
	if reg == nil {
		p.met = poolMetrics{}
		return
	}
	reg.Help(MetricRuns, "Worker-pool runs by execution mode.")
	reg.Help(MetricChunks, "Worker-pool chunks executed.")
	reg.Help(MetricBusyWorkers, "Chunks currently being processed (pool occupancy).")
	reg.Help(MetricChunkSeconds, "Per-chunk wall time in seconds.")
	p.met = poolMetrics{
		serialRuns:   reg.Counter(MetricRuns, "mode", "serial"),
		parallelRuns: reg.Counter(MetricRuns, "mode", "parallel"),
		chunks:       reg.Counter(MetricChunks),
		busy:         reg.Gauge(MetricBusyWorkers),
		chunkTime:    reg.Timer(MetricChunkSeconds, nil),
	}
}

// runChunk executes one chunk under the occupancy gauge and chunk timer.
func (m poolMetrics) runChunk(k int, s Span, fn func(int, Span)) {
	m.busy.Add(1)
	sw := m.chunkTime.Start()
	fn(k, s)
	sw.Stop()
	m.busy.Add(-1)
	m.chunks.Inc()
}
