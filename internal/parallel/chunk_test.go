package parallel

import (
	"reflect"
	"testing"
)

// checkSpansInvariants asserts the chunking contract for one (n, grain):
// spans tile [0, n) contiguously, every span is non-empty, all spans but
// the last share one size >= grain (or the whole input is one span), and
// the partition is a pure function of (n, grain).
func checkSpansInvariants(t *testing.T, n, grain int) {
	t.Helper()
	spans := Spans(n, grain)
	if n <= 0 {
		if spans != nil {
			t.Fatalf("Spans(%d,%d) = %v, want nil", n, grain, spans)
		}
		return
	}
	if len(spans) == 0 {
		t.Fatalf("Spans(%d,%d) empty for positive n", n, grain)
	}
	if len(spans) > maxChunks {
		t.Fatalf("Spans(%d,%d) yields %d chunks, cap %d", n, grain, len(spans), maxChunks)
	}
	want := 0
	for k, s := range spans {
		if s.Lo != want {
			t.Fatalf("span %d starts at %d, want %d (gap or overlap)", k, s.Lo, want)
		}
		if s.Len() <= 0 {
			t.Fatalf("span %d empty: %+v", k, s)
		}
		if k < len(spans)-1 && s.Len() != spans[0].Len() {
			t.Fatalf("span %d has len %d, want uniform %d", k, s.Len(), spans[0].Len())
		}
		want = s.Hi
	}
	if want != n {
		t.Fatalf("spans cover [0,%d), want [0,%d)", want, n)
	}
	effGrain := grain
	if effGrain < 1 {
		effGrain = 1
	}
	if len(spans) > 1 && spans[0].Len() < effGrain {
		t.Fatalf("chunk size %d below grain %d", spans[0].Len(), effGrain)
	}
	if !reflect.DeepEqual(spans, Spans(n, grain)) {
		t.Fatalf("Spans(%d,%d) not deterministic", n, grain)
	}
}

func TestSpansInvariants(t *testing.T) {
	for _, n := range []int{-3, 0, 1, 2, 3, 7, 15, 16, 17, 63, 64, 65, 100, 1000, 2000, 4097} {
		for _, grain := range []int{-1, 0, 1, 2, 16, 32, 1000} {
			checkSpansInvariants(t, n, grain)
		}
	}
}

func TestSpansShapeOnly(t *testing.T) {
	// The partition must not change with worker count or GOMAXPROCS —
	// there is no such parameter, but pin the exact shape for a few
	// inputs so a future "optimization" that derives chunking from the
	// environment fails loudly.
	got := Spans(10, 4)
	want := []Span{{0, 4}, {4, 8}, {8, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Spans(10,4) = %v, want %v", got, want)
	}
	if got := Spans(5, 100); !reflect.DeepEqual(got, []Span{{0, 5}}) {
		t.Errorf("Spans(5,100) = %v, want one full span", got)
	}
	// n beyond maxChunks*grain: size grows so the cap holds.
	spans := Spans(maxChunks*3+1, 1)
	if len(spans) > maxChunks {
		t.Errorf("cap violated: %d chunks", len(spans))
	}
}
