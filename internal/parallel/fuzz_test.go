package parallel

import (
	"context"
	"math/rand"
	"testing"
)

// FuzzSpans drives the chunking contract over arbitrary (n, grain),
// including the awkward shapes: empty input, n smaller than the grain or
// the worker count, and n not divisible by the chunk size.
func FuzzSpans(f *testing.F) {
	f.Add(0, 0)     // empty input
	f.Add(3, 16)    // n < grain (and < typical worker counts)
	f.Add(1003, 7)  // n not divisible by chunk size
	f.Add(64, 1)    // exactly maxChunks
	f.Add(4097, 32) // large, odd
	f.Add(-5, -5)   // negative garbage
	f.Fuzz(func(t *testing.T, n, grain int) {
		checkSpansInvariants(t, n, grain)
	})
}

// FuzzForEachEquivalence fuzzes input shape, grain, and worker count and
// requires the parallel elementwise map and ordered sum to be
// bit-identical to the serial ones.
func FuzzForEachEquivalence(f *testing.F) {
	f.Add(0, 1, 2, int64(1))    // empty input
	f.Add(3, 1, 8, int64(2))    // n < workers
	f.Add(1003, 7, 3, int64(3)) // n not divisible by chunk size
	f.Add(256, 16, 4, int64(4))
	f.Fuzz(func(t *testing.T, n, grain, workers int, seed int64) {
		n %= 4096
		if n < 0 {
			n = -n
		}
		workers %= 16
		rng := rand.New(rand.NewSource(seed))
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		run := func(p *Pool) ([]float64, float64) {
			out := make([]float64, n)
			if err := p.ForEach(context.Background(), n, grain, func(i int) {
				out[i] = in[i] * in[i]
			}); err != nil {
				t.Fatal(err)
			}
			var total float64
			if err := ReduceOrdered(context.Background(), p, n, grain,
				func(s Span) float64 {
					var part float64
					for i := s.Lo; i < s.Hi; i++ {
						part += in[i]
					}
					return part
				},
				func(part float64) { total += part },
			); err != nil {
				t.Fatal(err)
			}
			return out, total
		}
		wantOut, wantSum := run(New(1))
		gotOut, gotSum := run(New(workers))
		for i := range wantOut {
			if gotOut[i] != wantOut[i] {
				t.Fatalf("out[%d]: parallel %v != serial %v", i, gotOut[i], wantOut[i])
			}
		}
		if gotSum != wantSum {
			t.Fatalf("sum: parallel %v != serial %v", gotSum, wantSum)
		}
	})
}
