package parallel

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqm/internal/obs"
)

func TestNewWorkerCounts(t *testing.T) {
	if got := New(4).Workers(); got != 4 {
		t.Errorf("New(4).Workers() = %d", got)
	}
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != 1 {
		t.Errorf("New(-3).Workers() = %d, want 1", got)
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", got)
	}
}

func TestAutoCutoff(t *testing.T) {
	if got := Auto(0, 10, 100).Workers(); got != 1 {
		t.Errorf("Auto small input = %d workers, want serial", got)
	}
	if got := Auto(0, 1000, 100).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Auto large input = %d workers, want GOMAXPROCS", got)
	}
	if got := Auto(7, 10, 100).Workers(); got != 7 {
		t.Errorf("Auto explicit workers = %d, want 7 (cutoff must not override)", got)
	}
}

// TestForEachSerialParallelEquivalence is the package's core property:
// an elementwise map produces bit-identical output at every worker
// count, on randomized seeded inputs.
func TestForEachSerialParallelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3000)
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		compute := func(p *Pool) []float64 {
			out := make([]float64, n)
			if err := p.ForEach(context.Background(), n, 8, func(i int) {
				v := in[i]
				for k := 0; k < 10; k++ {
					v = v*1.0000001 + float64(i)*1e-9
				}
				out[i] = v
			}); err != nil {
				t.Fatal(err)
			}
			return out
		}
		serial := compute(New(1))
		for _, workers := range []int{2, 3, 4, 8} {
			if got := compute(New(workers)); !reflect.DeepEqual(got, serial) {
				t.Fatalf("trial %d: workers=%d output differs from serial (n=%d)", trial, workers, n)
			}
		}
	}
}

// TestReduceOrderedEquivalence checks that a floating-point sum — the
// canonical non-associative reduction — is bit-identical across worker
// counts because partials merge in chunk order.
func TestReduceOrderedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(5000)
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.NormFloat64() * 1e6 * rng.Float64()
		}
		sum := func(p *Pool) float64 {
			var total float64
			if err := ReduceOrdered(context.Background(), p, n, 16,
				func(s Span) float64 {
					var part float64
					for i := s.Lo; i < s.Hi; i++ {
						part += in[i]
					}
					return part
				},
				func(part float64) { total += part },
			); err != nil {
				t.Fatal(err)
			}
			return total
		}
		serial := sum(New(1))
		for _, workers := range []int{2, 5, 8} {
			if got := sum(New(workers)); got != serial {
				t.Fatalf("trial %d: workers=%d sum %v != serial %v", trial, workers, got, serial)
			}
		}
	}
}

func TestForChunksEachChunkOnce(t *testing.T) {
	const n, grain = 1003, 7
	spans := Spans(n, grain)
	counts := make([]atomic.Int64, len(spans))
	err := New(4).ForChunks(context.Background(), n, grain, func(k int, s Span) {
		if spans[k] != s {
			t.Errorf("chunk %d got span %+v, want %+v", k, s, spans[k])
		}
		counts[k].Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := range counts {
		if got := counts[k].Load(); got != 1 {
			t.Errorf("chunk %d ran %d times", k, got)
		}
	}
}

func TestForChunksEmptyInput(t *testing.T) {
	ran := false
	if err := New(4).ForChunks(context.Background(), 0, 1, func(int, Span) { ran = true }); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("fn ran for empty input")
	}
	var nilPool *Pool
	out := make([]int, 5)
	if err := nilPool.ForEach(context.Background(), 5, 1, func(i int) { out[i] = i + 1 }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{1, 2, 3, 4, 5}) {
		t.Errorf("nil pool ForEach out = %v", out)
	}
}

// TestCancellationNoGoroutineLeak proves cancellation stops the pool and
// leaves no goroutine behind: the goroutine count returns to its
// pre-run level once ForChunks returns.
func TestCancellationNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started sync.Once
	release := make(chan struct{})
	err := New(4).ForChunks(ctx, 1000, 1, func(k int, s Span) {
		started.Do(func() {
			cancel()
			close(release)
		})
		<-release // every chunk observes the cancel before returning
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
	// The workers must already be gone; give the runtime a few
	// scheduling quanta for the counters to settle.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
}

func TestSerialPathHonoursCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := New(1).ForChunks(ctx, 100, 1, func(k int, s Span) {
		ran++
		if ran == 3 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("want context error")
	}
	if ran > 3 {
		t.Errorf("serial run continued %d chunks past cancel", ran-3)
	}
}

// TestSharedPoolConcurrentCallers hammers one pool from many goroutines;
// under -race this proves the pool itself carries no shared mutable
// state across runs.
func TestSharedPoolConcurrentCallers(t *testing.T) {
	pool := New(4)
	pool.Instrument(obs.NewRegistry())
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				n := 100 + c*31 + rep
				out := make([]float64, n)
				if err := pool.ForEach(context.Background(), n, 4, func(i int) {
					out[i] = float64(i * i)
				}); err != nil {
					t.Error(err)
					return
				}
				for i := range out {
					if out[i] != float64(i*i) {
						t.Errorf("caller %d: out[%d] = %v", c, i, out[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	pool := New(4)
	pool.Instrument(reg)
	if err := pool.ForEach(context.Background(), 100, 1, func(int) {}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricRuns, "mode", "parallel").Value(); got != 1 {
		t.Errorf("parallel runs = %d, want 1", got)
	}
	wantChunks := int64(len(Spans(100, 1)))
	if got := reg.Counter(MetricChunks).Value(); got != wantChunks {
		t.Errorf("chunks = %d, want %d", got, wantChunks)
	}
	if got := reg.Gauge(MetricBusyWorkers).Value(); got != 0 {
		t.Errorf("busy workers after run = %v, want 0", got)
	}
	if got := reg.Histogram(MetricChunkSeconds, nil).Count(); got != wantChunks {
		t.Errorf("chunk timings = %d, want %d", got, wantChunks)
	}
	// Serial runs land in the serial counter.
	if err := New(1).ForEach(context.Background(), 10, 1, func(int) {}); err != nil {
		t.Fatal(err)
	}
	pool.Instrument(nil) // disable again: next run must not move counters
	if err := pool.ForEach(context.Background(), 100, 1, func(int) {}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricRuns, "mode", "parallel").Value(); got != 1 {
		t.Errorf("disabled pool still counted: %d runs", got)
	}
	var nilPool *Pool
	nilPool.Instrument(reg) // must not panic
}
