package parallel

// Span is one contiguous half-open index range [Lo, Hi) of an input.
type Span struct {
	// Lo is the first index of the span.
	Lo int
	// Hi is one past the last index of the span.
	Hi int
}

// Len returns the number of indices covered by the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// maxChunks caps the number of chunks per run. More chunks than workers
// keeps the pool load-balanced when per-chunk cost varies; a fixed cap
// bounds the partial-result memory of ordered reductions. The cap is a
// constant so chunk boundaries stay a pure function of the input shape.
const maxChunks = 64

// Spans partitions [0, n) into contiguous chunks. Boundaries depend only
// on n and grain — never on worker count, GOMAXPROCS, or scheduling — so
// a chunked reduction merges the same partials in the same order at every
// parallelism level. grain is the minimum chunk length (values < 1 are
// treated as 1); every chunk except possibly the last has the same
// length. n <= 0 yields nil.
func Spans(n, grain int) []Span {
	if n <= 0 {
		return nil
	}
	if grain < 1 {
		grain = 1
	}
	// Overflow-safe ceil divisions: n and grain are arbitrary caller
	// input (fuzzed), so never form n + size - 1.
	size := n / maxChunks
	if n%maxChunks != 0 {
		size++
	}
	if size < grain {
		size = grain
	}
	count := n / size
	if n%size != 0 {
		count++
	}
	out := make([]Span, 0, count)
	for lo := 0; lo < n; {
		// hi = min(lo+size, n) without forming lo+size, which overflows
		// when n is near the int maximum.
		step := n - lo
		if step > size {
			step = size
		}
		out = append(out, Span{Lo: lo, Hi: lo + step})
		lo += step
	}
	return out
}
