package core

import (
	"fmt"

	"cqm/internal/obs"
	"cqm/internal/sensor"
	"cqm/internal/stat"
)

// AdaptiveFilter is an online variant of Filter: besides filtering, it
// re-estimates the right/wrong quality densities from labelled feedback
// (exponentially weighted, so drift is tracked) and moves the threshold to
// their current intersection. A deployed appliance occasionally learns
// whether a classification was actually right — a user correcting the
// system, a cross-checking second sensor — and should not keep running on
// the threshold of a months-old calibration session.
type AdaptiveFilter struct {
	measure   *Measure
	right     *stat.Decayed
	wrong     *stat.Decayed
	thresh    float64
	updates   int
	observer  func(ThresholdEvent)
	cfg       AdaptiveConfig
	epsRecent []bool // ring over the last EpsilonWindow decisions
	epsNext   int
	epsSeen   int
	epsCount  int
	widenings int
	met       adaptiveMetrics
}

// AdaptiveConfig parameterizes the online threshold tracker.
type AdaptiveConfig struct {
	// InitialThreshold seeds the filter (usually Analysis.Threshold).
	InitialThreshold float64
	// Lambda is the per-feedback retention factor of the density
	// estimates; default 0.98 (a memory of roughly 50 feedbacks).
	Lambda float64
	// Observer, when non-nil, is called synchronously every time the
	// threshold moves — the drift hook for appliances and dashboards.
	Observer func(ThresholdEvent)
	// EpsilonRate, when positive, enables graceful degradation under
	// sustained ε storms: once the ε fraction of the last EpsilonWindow
	// decisions reaches this rate, the threshold is widened by
	// WidenFactor. A degraded sensor pushes most classifications into ε,
	// so the rare quality-bearing events are the appliance's only signal;
	// widening trades a little precision for not going deaf.
	EpsilonRate float64
	// EpsilonWindow is the number of recent decisions the ε rate is
	// measured over. Default 20.
	EpsilonWindow int
	// WidenFactor is the fractional threshold reduction per widening
	// step. Default 0.1.
	WidenFactor float64
	// MinThreshold floors the widening. Default 0.
	MinThreshold float64
}

// Instrument registers the adaptive filter's metrics — decision counters,
// feedback counters by outcome, a threshold-update counter, and the
// current-threshold gauge — on reg; a nil registry turns instrumentation
// off.
func (f *AdaptiveFilter) Instrument(reg *obs.Registry) {
	f.met = newAdaptiveMetrics(reg)
	f.met.threshold.Set(f.thresh)
}

// NewAdaptiveFilter wraps the measure with an adapting threshold.
func NewAdaptiveFilter(m *Measure, cfg AdaptiveConfig) (*AdaptiveFilter, error) {
	if m == nil || m.sys == nil {
		return nil, ErrUnbuilt
	}
	if cfg.InitialThreshold < 0 || cfg.InitialThreshold > 1 {
		return nil, fmt.Errorf("core: initial threshold %v outside [0,1]", cfg.InitialThreshold)
	}
	lambda := cfg.Lambda
	if lambda == 0 {
		lambda = 0.98
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("core: lambda %v outside (0,1]", lambda)
	}
	if cfg.EpsilonRate < 0 || cfg.EpsilonRate > 1 {
		return nil, fmt.Errorf("core: epsilon rate %v outside [0,1]", cfg.EpsilonRate)
	}
	if cfg.EpsilonWindow == 0 {
		cfg.EpsilonWindow = 20
	}
	if cfg.EpsilonWindow < 2 {
		return nil, fmt.Errorf("core: epsilon window %d too small", cfg.EpsilonWindow)
	}
	if cfg.WidenFactor == 0 {
		cfg.WidenFactor = 0.1
	}
	if cfg.WidenFactor <= 0 || cfg.WidenFactor >= 1 {
		return nil, fmt.Errorf("core: widen factor %v outside (0,1)", cfg.WidenFactor)
	}
	if cfg.MinThreshold < 0 || cfg.MinThreshold > cfg.InitialThreshold {
		return nil, fmt.Errorf("core: min threshold %v outside [0, initial %v]", cfg.MinThreshold, cfg.InitialThreshold)
	}
	f := &AdaptiveFilter{
		measure:  m,
		right:    stat.NewDecayed(lambda),
		wrong:    stat.NewDecayed(lambda),
		thresh:   cfg.InitialThreshold,
		observer: cfg.Observer,
		cfg:      cfg,
	}
	if cfg.EpsilonRate > 0 {
		f.epsRecent = make([]bool, cfg.EpsilonWindow)
	}
	return f, nil
}

// Threshold returns the current acceptance threshold.
func (f *AdaptiveFilter) Threshold() float64 { return f.thresh }

// Updates returns the number of threshold re-estimations performed.
func (f *AdaptiveFilter) Updates() int { return f.updates }

// Decide scores and filters one classification at the current threshold.
func (f *AdaptiveFilter) Decide(cues []float64, class sensor.Context) (Decision, error) {
	q, err := f.measure.Score(cues, class)
	if err != nil {
		if IsEpsilon(err) {
			d := Decision{Accepted: false, Epsilon: true}
			f.met.observe(d)
			f.observeEpsilon(true)
			return d, nil
		}
		return Decision{}, err
	}
	d := Decision{Accepted: q > f.thresh, Quality: q}
	f.met.observe(d)
	f.observeEpsilon(false)
	return d, nil
}

// observeEpsilon tracks the ε rate over the recent-decision window and
// widens the threshold once a sustained storm is detected. The window
// resets after each widening so one storm widens once, not once per
// decision.
func (f *AdaptiveFilter) observeEpsilon(isEps bool) {
	if f.epsRecent == nil {
		return
	}
	if f.epsSeen == len(f.epsRecent) {
		if f.epsRecent[f.epsNext] {
			f.epsCount--
		}
	} else {
		f.epsSeen++
	}
	f.epsRecent[f.epsNext] = isEps
	if isEps {
		f.epsCount++
	}
	f.epsNext = (f.epsNext + 1) % len(f.epsRecent)
	if f.epsSeen < len(f.epsRecent) {
		return
	}
	rate := float64(f.epsCount) / float64(f.epsSeen)
	if rate < f.cfg.EpsilonRate {
		return
	}
	old := f.thresh
	widened := old * (1 - f.cfg.WidenFactor)
	if widened < f.cfg.MinThreshold {
		widened = f.cfg.MinThreshold
	}
	f.epsSeen, f.epsCount, f.epsNext = 0, 0, 0
	for i := range f.epsRecent {
		f.epsRecent[i] = false
	}
	if widened == old { //lint:ignore floatcmp equality only arises from the exact MinThreshold clamp assignment above
		return
	}
	f.thresh = widened
	f.widenings++
	f.met.widenings.Inc()
	f.met.threshold.Set(widened)
	if f.observer != nil {
		f.observer(ThresholdEvent{Old: old, New: widened, Updates: f.updates})
	}
}

// Widenings returns the number of ε-storm threshold widenings performed.
func (f *AdaptiveFilter) Widenings() int { return f.widenings }

// Feedback folds one labelled outcome into the density estimates and, once
// both densities have enough weight, moves the threshold to their current
// intersection. ε-state scores are ignored (they are filtered regardless
// of the threshold).
func (f *AdaptiveFilter) Feedback(cues []float64, class sensor.Context, wasCorrect bool) error {
	q, err := f.measure.Score(cues, class)
	if err != nil {
		if IsEpsilon(err) {
			f.met.feedbackEpsilon.Inc()
			return nil
		}
		return err
	}
	if wasCorrect {
		f.right.Add(q)
		f.met.feedbackRight.Inc()
	} else {
		f.wrong.Add(q)
		f.met.feedbackWrong.Inc()
	}
	// Re-estimate once both sides carry meaningful weight.
	const minWeight = 3
	if f.right.Weight() < minWeight || f.wrong.Weight() < minWeight {
		return nil
	}
	gr, err := f.right.Gaussian()
	if err != nil {
		return nil
	}
	gw, err := f.wrong.Gaussian()
	if err != nil {
		return nil
	}
	if gr.Mu <= gw.Mu {
		// The world currently looks inverted (right scoring below
		// wrong); keep the old threshold rather than flip the filter.
		return nil
	}
	s, err := stat.Intersect(gw, gr, 0, 1)
	if err != nil {
		s = 0.5 * (gw.Mu + gr.Mu)
	}
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	old := f.thresh
	f.thresh = s
	f.updates++
	f.met.updates.Inc()
	f.met.threshold.Set(s)
	if f.observer != nil {
		f.observer(ThresholdEvent{Old: old, New: s, Updates: f.updates})
	}
	return nil
}
