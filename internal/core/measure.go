package core

import (
	"context"
	"encoding/json"
	"fmt"

	"cqm/internal/anfis"
	"cqm/internal/cluster"
	"cqm/internal/fuzzy"
	"cqm/internal/obs"
	"cqm/internal/parallel"
	"cqm/internal/sensor"
)

// scoreGrain chunks batch scoring; part of the deterministic-reduction
// contract (fixed, never derived from worker count or environment).
const scoreGrain = 16

// Measure is the Context Quality Measure: the normalized quality FIS S_Q.
// Build one with Build; score classifications with Score. Instrument
// attaches runtime metrics; without it scoring stays completely
// unobserved and allocation-free beyond the evaluation itself.
type Measure struct {
	sys *fuzzy.TSK
	met measureMetrics
}

// Instrument registers the measure's runtime metrics — scorings, ε
// outcomes, and the quality-value distribution — on reg. A nil registry
// turns instrumentation off again. Metric pointers are resolved once here,
// so the scoring hot path never touches the registry.
func (m *Measure) Instrument(reg *obs.Registry) {
	m.met = newMeasureMetrics(reg)
}

// MeasureFromSystem wraps an externally constructed quality FIS (ablation
// experiments build systems from alternative clusterings). The system must
// map v_Q = (cues…, c) to the designated 0/1 output.
func MeasureFromSystem(sys *fuzzy.TSK) *Measure {
	return &Measure{sys: sys}
}

// BuildConfig parameterizes the automated construction of the quality FIS
// (paper §2.2).
type BuildConfig struct {
	// Clustering configures the subtractive clustering over the v_Q
	// vectors; the zero value uses Chiu's defaults.
	Clustering cluster.SubtractiveConfig
	// Hybrid configures the ANFIS hybrid-learning refinement; the zero
	// value uses the anfis defaults.
	Hybrid anfis.Config
	// SkipHybrid disables the ANFIS refinement, leaving the
	// clustering+least-squares system — the ablation the paper's pipeline
	// implies (construction alone vs construction + tuning).
	SkipHybrid bool
	// ConstantConsequents uses zero-order consequents instead of the
	// paper's linear ones (ablation for the §2.1.2 remark that linear
	// consequents give better reliability results).
	ConstantConsequents bool
	// Observer, when non-nil, receives per-epoch hybrid-learning events
	// and the stopping decision — the training-progress hook.
	Observer TrainObserver
	// Metrics, when non-nil, records construction metrics (epoch counter,
	// live train/check RMSE gauges, a stop event) and pre-instruments the
	// built Measure, as if Instrument had been called on it.
	Metrics *obs.Registry
}

// Build constructs the quality FIS from observations with secondary
// knowledge. The designated output is 1 for correct and 0 for wrong
// classifications; check drives the hybrid-learning early stop and may be
// nil (then a tail of train is split off automatically, mirroring the
// paper's separate check set).
func Build(train, check []Observation, cfg BuildConfig) (*Measure, error) {
	if len(train) == 0 {
		return nil, ErrNoObservations
	}
	if check == nil {
		// Hold out the final quarter as the check set.
		cut := len(train) * 3 / 4
		if cut < 1 {
			cut = 1
		}
		if cut < len(train) {
			check = train[cut:]
			train = train[:cut]
		}
	}
	trainData := observationsToData(train)
	checkData := observationsToData(check)

	// The construction registry also instruments the worker pools of the
	// parallelized stages, unless the caller set a dedicated one.
	clustering := cfg.Clustering
	if clustering.Metrics == nil {
		clustering.Metrics = cfg.Metrics
	}
	sys, err := anfis.Build(trainData, anfis.BuildConfig{
		Clustering:          clustering,
		ConstantConsequents: cfg.ConstantConsequents,
	})
	if err != nil {
		return nil, fmt.Errorf("core: constructing quality FIS: %w", err)
	}
	if !cfg.SkipHybrid {
		var checkArg *anfis.Data
		if checkData.Len() > 0 {
			checkArg = checkData
		}
		hybrid := cfg.Hybrid
		hybrid.ConstantConsequents = cfg.ConstantConsequents
		hybrid.Observer = cfg.Observer
		if cfg.Metrics != nil {
			hybrid.Observer = anfis.Observers(hybrid.Observer, metricsObserver(cfg.Metrics))
		}
		if hybrid.Metrics == nil {
			hybrid.Metrics = cfg.Metrics
		}
		if _, err := anfis.Train(sys, trainData, checkArg, hybrid); err != nil {
			return nil, fmt.Errorf("core: hybrid learning: %w", err)
		}
	}
	m := &Measure{sys: sys}
	m.Instrument(cfg.Metrics)
	return m, nil
}

// observationsToData converts observations into the (v_Q, designated
// output) pairs the ANFIS layer trains on.
func observationsToData(obs []Observation) *anfis.Data {
	d := &anfis.Data{
		X: make([][]float64, len(obs)),
		Y: make([]float64, len(obs)),
	}
	for i, o := range obs {
		d.X[i] = qualityInput(o.Cues, o.Class)
		if o.Correct {
			d.Y[i] = 1
		}
	}
	return d
}

// Score returns the CQM q ∈ [0,1] for one classification: the quality FIS
// evaluated at v_Q = (cues, c), normalized by L. It returns ErrEpsilon
// when the raw output falls outside the normalizable range and
// fuzzy.ErrNoActivation (wrapped in ErrEpsilon) when no rule fires —
// either way the caller should treat the classification as unusable.
func (m *Measure) Score(cues []float64, class sensor.Context) (float64, error) {
	if m == nil || m.sys == nil {
		return 0, ErrUnbuilt
	}
	raw, err := m.RawScore(cues, class)
	if err != nil {
		m.met.scored.Inc()
		m.met.epsilon.Inc()
		return 0, err
	}
	q, err := Normalize(raw)
	m.met.scored.Inc()
	if err != nil {
		m.met.epsilon.Inc()
		return 0, err
	}
	m.met.quality.Observe(q)
	return q, nil
}

// RawScore returns the un-normalized FIS output S̃_Q(v_Q); exposed for the
// normalization ablation. A no-activation input is reported as ErrEpsilon.
func (m *Measure) RawScore(cues []float64, class sensor.Context) (float64, error) {
	if m == nil || m.sys == nil {
		return 0, ErrUnbuilt
	}
	raw, err := m.sys.Eval(qualityInput(cues, class))
	if err != nil {
		//lint:ignore hotpath-alloc ε-state path: allocates only for no-activation observations, which the batch path discards
		return 0, fmt.Errorf("%w: %v", ErrEpsilon, err)
	}
	return raw, nil
}

// ScoreBatch scores every observation, optionally in parallel on pool
// (nil runs serially), and returns per-index results: ok[i] reports
// whether obs[i] normalized cleanly, and qs[i] is its quality value when
// it did (ε-state observations leave ok[i] false). A non-ε error aborts
// the batch, reporting the lowest failing index. The outputs are
// bit-identical at every worker count: each slot is written by exactly
// one worker and every score is an independent FIS evaluation.
//
//cqm:hotpath
func (m *Measure) ScoreBatch(observations []Observation, pool *parallel.Pool) (qs []float64, ok []bool, err error) {
	if m == nil || m.sys == nil {
		return nil, nil, ErrUnbuilt
	}
	if len(observations) == 0 {
		return nil, nil, ErrNoObservations
	}
	qs = make([]float64, len(observations))  //lint:ignore hotpath-alloc result buffer: one make per batch, not per score
	ok = make([]bool, len(observations))     //lint:ignore hotpath-alloc result buffer: one make per batch, not per score
	errs := make([]error, len(observations)) //lint:ignore hotpath-alloc result buffer: one make per batch, not per score
	// The ForEach error is always nil — the context is never cancelled.
	//lint:ignore hotpath-alloc one closure per batch, amortized over every score in it
	_ = pool.ForEach(context.Background(), len(observations), scoreGrain, func(i int) {
		q, err := m.Score(observations[i].Cues, observations[i].Class)
		if err != nil {
			if !IsEpsilon(err) {
				errs[i] = err
			}
			return
		}
		qs[i] = q
		ok[i] = true
	})
	for i, scoreErr := range errs {
		if scoreErr != nil {
			//lint:ignore hotpath-alloc cold abort path: a non-ε error ends the batch
			return nil, nil, fmt.Errorf("core: scoring observation %d: %w", i, scoreErr)
		}
	}
	return qs, ok, nil
}

// ScoreObservations scores a batch, returning the q values for the
// observations that normalize cleanly, the indices that fell into the ε
// state, and the correctness labels aligned with the q values.
func (m *Measure) ScoreObservations(obs []Observation) (qs []float64, correct []bool, epsilon []int, err error) {
	all, ok, err := m.ScoreBatch(obs, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := range obs {
		if !ok[i] {
			epsilon = append(epsilon, i)
			continue
		}
		qs = append(qs, all[i])
		correct = append(correct, obs[i].Correct)
	}
	return qs, correct, epsilon, nil
}

// Rules returns the number of rules in the quality FIS.
func (m *Measure) Rules() int {
	if m == nil || m.sys == nil {
		return 0
	}
	return m.sys.NumRules()
}

// Inputs returns the dimensionality of v_Q the measure expects (cues + 1).
func (m *Measure) Inputs() int {
	if m == nil || m.sys == nil {
		return 0
	}
	return m.sys.Inputs()
}

// System exposes the underlying fuzzy system for inspection.
func (m *Measure) System() *fuzzy.TSK { return m.sys }

// MarshalJSON serializes the measure (its quality FIS).
func (m *Measure) MarshalJSON() ([]byte, error) {
	if m.sys == nil {
		return nil, ErrUnbuilt
	}
	return json.Marshal(m.sys)
}

// UnmarshalJSON restores a serialized measure.
func (m *Measure) UnmarshalJSON(data []byte) error {
	var sys fuzzy.TSK
	if err := json.Unmarshal(data, &sys); err != nil {
		return fmt.Errorf("core: decoding measure: %w", err)
	}
	m.sys = &sys
	return nil
}
