package core

import (
	"errors"
	"fmt"
)

// ErrEpsilon is the error state ε of the normalization function L (paper
// §2.1.3): the raw FIS output lies too far outside [0,1] to be mapped back
// in a semantically correct way. Appliances treat ε as "discard".
var ErrEpsilon = errors.New("core: quality measure in error state ε")

// Normalize implements the paper's normalization function L:
//
//	L(x) = x      if 0 ≤ x ≤ 1
//	L(x) = −x     if −0.5 ≤ x < 0
//	L(x) = 1 − x  if 1 < x ≤ 1.5   (folded back toward the designated 1)
//	L(x) = ε      otherwise
//
// Values slightly below 0 represent "zero with a mapping error", values
// slightly above 1 "one with a mapping error"; both fold back into [0,1].
// Anything beyond ±0.5 of the designated outputs is semantically
// uninterpretable and becomes the error state.
//
// Note the (1, 1.5] branch follows the paper's formula literally: 1−x is
// negative there, representing the *residual* distance past the designated
// one; its magnitude is what matters, so the fold uses |1−x| = x−1
// reflected about the designated output, giving 1−(x−1) = 2−x. See
// NormalizeLiteral for the verbatim formula and the tests for the
// distinction.
func Normalize(x float64) (float64, error) {
	switch {
	case x >= 0 && x <= 1:
		return x, nil
	case x >= -0.5 && x < 0:
		// Distance |x| from the designated 0, folded into the interval.
		return -x, nil
	case x > 1 && x <= 1.5:
		// Distance x−1 past the designated 1, folded back symmetrically.
		return 2 - x, nil
	default:
		//lint:ignore hotpath-alloc ε-state path: allocates only for out-of-range raw outputs
		return 0, fmt.Errorf("%w: raw output %v", ErrEpsilon, x)
	}
}

// NormalizeLiteral applies the paper's formula exactly as printed,
// including the 1−x branch whose result is negative on (1, 1.5]. It exists
// for the ablation experiment comparing the literal formula against the
// symmetric fold; production code uses Normalize.
func NormalizeLiteral(x float64) (float64, error) {
	switch {
	case x >= 0 && x <= 1:
		return x, nil
	case x >= -0.5 && x < 0:
		return -x, nil
	case x > 1 && x <= 1.5:
		return 1 - x, nil
	default:
		return 0, fmt.Errorf("%w: raw output %v", ErrEpsilon, x)
	}
}

// IsEpsilon reports whether err represents the ε error state.
func IsEpsilon(err error) bool {
	return errors.Is(err, ErrEpsilon)
}

// DegradedRaw is the sentinel raw output assigned to a classification
// whose input window was flagged as degraded (stuck axis, saturation,
// sampling gap, clock skew). It sits outside L's interpretable domain
// [−0.5, 1.5] by construction, so degraded inputs reach appliances through
// the same ε error state as any other uninterpretable quality — the
// paper's single "discard this" channel, not a parallel mechanism.
const DegradedRaw = 2.0

// ScoreDegraded returns the quality of a degraded-input classification:
// always the ε error state, produced by routing DegradedRaw through the
// normalization function L.
func ScoreDegraded() (float64, error) {
	return Normalize(DegradedRaw)
}
