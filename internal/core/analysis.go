package core

import (
	"errors"
	"fmt"

	"cqm/internal/stat"
)

// Analysis is the statistical layer of §2.3: MLE Gaussian densities for
// the quality values of right and wrong classifications, the optimal
// threshold at their intersection, and the four probabilities derived from
// the Gaussian median cuts.
type Analysis struct {
	// Right and Wrong are the MLE densities φ of the q values of correct
	// and incorrect classifications.
	Right, Wrong stat.Gaussian
	// Threshold is the optimal s at the intersection of the densities.
	Threshold float64
	// The four probabilities of §2.3.3, computed from the Gaussian median
	// cuts exactly as the paper defines them:
	//
	//	PRightAccept = P(c = right | q > s) = Φ̄_r(s) − Φ̄_w(s)
	//	PWrongReject = P(c = wrong | q < s) = Φ_w(s) − Φ_r(s)
	//	PWrongAccept = P(c = wrong | q > s) = Φ̄_w(s)
	//	PRightReject = P(c = right | q < s) = Φ_r(s)
	//
	// The first two are identical for every s (both equal Φ_w − Φ_r), the
	// identity the paper reports as holding "at this optimum".
	PRightAccept float64
	PWrongReject float64
	PWrongAccept float64
	PRightReject float64
	// Separable reports whether the observed q values of right and wrong
	// classifications do not overlap at all (the paper's 24-point test set
	// is fully separable).
	Separable bool
	// EpsilonCount is the number of observations that fell into the ε
	// state and were excluded from the density estimation.
	EpsilonCount int
	// QRight and QWrong are the scored quality values per group (kept for
	// figure rendering).
	QRight, QWrong []float64
}

// Analyze scores the observations with the measure and performs the §2.3
// statistical analysis. The observations must contain both right and wrong
// classifications; ε-state scores are excluded from the densities but
// counted.
func Analyze(m *Measure, obs []Observation) (*Analysis, error) {
	qs, correct, epsilon, err := m.ScoreObservations(obs)
	if err != nil {
		return nil, err
	}
	a := &Analysis{EpsilonCount: len(epsilon)}
	for i, q := range qs {
		if correct[i] {
			a.QRight = append(a.QRight, q)
		} else {
			a.QWrong = append(a.QWrong, q)
		}
	}
	if len(a.QRight) == 0 || len(a.QWrong) == 0 {
		return nil, fmt.Errorf("%w: %d right, %d wrong", ErrOneSided, len(a.QRight), len(a.QWrong))
	}
	a.Right, err = stat.FitGaussianMLE(a.QRight)
	if err != nil {
		return nil, fmt.Errorf("core: fitting right density: %w", err)
	}
	a.Wrong, err = stat.FitGaussianMLE(a.QWrong)
	if err != nil {
		return nil, fmt.Errorf("core: fitting wrong density: %w", err)
	}

	a.Threshold, err = thresholdFromDensities(a.Wrong, a.Right)
	if err != nil {
		return nil, err
	}

	// Median cuts (§2.3.3).
	rightAbove := a.Right.UpperTail(a.Threshold)
	wrongAbove := a.Wrong.UpperTail(a.Threshold)
	rightBelow := a.Right.CDF(a.Threshold)
	wrongBelow := a.Wrong.CDF(a.Threshold)
	a.PRightAccept = rightAbove - wrongAbove
	a.PWrongReject = wrongBelow - rightBelow
	a.PWrongAccept = wrongAbove
	a.PRightReject = rightBelow

	minRight, _ := stat.MinMax(a.QRight)
	_, maxWrong := stat.MinMax(a.QWrong)
	a.Separable = maxWrong < minRight
	return a, nil
}

// thresholdFromDensities places s at the intersection of the wrong and
// right densities (§2.3.2), searching first inside [0,1], then in a wider
// bracket, and finally falling back to the midpoint of the means when the
// densities never cross (e.g. almost-identical spreads far apart).
func thresholdFromDensities(wrong, right stat.Gaussian) (float64, error) {
	s, err := stat.Intersect(wrong, right, 0, 1)
	if err == nil {
		return s, nil
	}
	if !errors.Is(err, stat.ErrNoIntersection) {
		return 0, fmt.Errorf("core: threshold determination: %w", err)
	}
	s, err = stat.Intersect(wrong, right, -1, 2)
	if err == nil {
		return s, nil
	}
	if !errors.Is(err, stat.ErrNoIntersection) {
		return 0, fmt.Errorf("core: threshold determination: %w", err)
	}
	return 0.5 * (wrong.Mu + right.Mu), nil
}
