package core

import (
	"errors"
	"fmt"

	"cqm/internal/classify"
	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

// CQM construction errors.
var (
	// ErrNoObservations reports construction or analysis without data.
	ErrNoObservations = errors.New("core: no observations")
	// ErrOneSided reports an analysis set whose classifications are all
	// right or all wrong — the two densities of §2.3 cannot be estimated.
	ErrOneSided = errors.New("core: observations are all right or all wrong")
	// ErrUnbuilt reports use of a Measure that was never built.
	ErrUnbuilt = errors.New("core: quality measure is not built")
)

// Observation is one classified sample with secondary knowledge: the cues
// the classifier consumed, the class it produced, and whether that was
// correct. The automated construction (§2.2) and the statistical analysis
// (§2.3.1) both require this secondary knowledge; online scoring does not.
type Observation struct {
	// Cues is the classifier input v_C.
	Cues []float64
	// Class is the classifier's output c.
	Class sensor.Context
	// Correct reports whether Class matches the ground truth.
	Correct bool
	// Pure reports whether the originating window was transition-free
	// (carried through from the dataset for reporting).
	Pure bool
}

// Observe runs the black-box classifier over a labelled set and records,
// per sample, the produced class and its correctness. This is the only
// coupling between the quality system and the classifier: input cues and
// output class, nothing else.
func Observe(clf classify.Classifier, set *dataset.Set) ([]Observation, error) {
	if set == nil || set.Len() == 0 {
		return nil, ErrNoObservations
	}
	out := make([]Observation, 0, set.Len())
	for i, smp := range set.Samples {
		class, err := clf.Classify(smp.Cues)
		if err != nil {
			return nil, fmt.Errorf("core: classifying sample %d: %w", i, err)
		}
		cues := make([]float64, len(smp.Cues))
		copy(cues, smp.Cues)
		out = append(out, Observation{
			Cues:    cues,
			Class:   class,
			Correct: class == smp.Truth,
			Pure:    smp.Pure,
		})
	}
	return out, nil
}

// AugmentObservations builds the exhaustive counterfactual training set
// for a labelled sample set: one observation per (sample, class) pair,
// correct exactly when the class matches the ground truth. The designated
// output of the quality FIS is defined for any such pairing (§2.2), so
// this is a valid training superset; it calibrates S_Q on pairings the
// classifier itself never produces, which the context-prediction extension
// (paper §5, package predict) needs to score alternative classes
// meaningfully.
func AugmentObservations(set *dataset.Set, classes []sensor.Context) ([]Observation, error) {
	if set == nil || set.Len() == 0 {
		return nil, ErrNoObservations
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("%w: no classes to augment with", ErrNoObservations)
	}
	out := make([]Observation, 0, set.Len()*len(classes))
	for _, smp := range set.Samples {
		for _, c := range classes {
			cues := make([]float64, len(smp.Cues))
			copy(cues, smp.Cues)
			out = append(out, Observation{
				Cues:    cues,
				Class:   c,
				Correct: c == smp.Truth,
				Pure:    smp.Pure,
			})
		}
	}
	return out, nil
}

// SplitByCorrectness partitions observations into right and wrong ones.
func SplitByCorrectness(obs []Observation) (right, wrong []Observation) {
	for _, o := range obs {
		if o.Correct {
			right = append(right, o)
		} else {
			wrong = append(wrong, o)
		}
	}
	return right, wrong
}

// qualityInput builds v_Q = (v_1, …, v_n, c) for one observation.
func qualityInput(cues []float64, class sensor.Context) []float64 {
	//lint:ignore hotpath-alloc one input vector per score; removing it is ROADMAP item 2 (zero-alloc FIS evaluation)
	v := make([]float64, len(cues)+1)
	copy(v, cues)
	v[len(cues)] = float64(class.ID())
	return v
}
