package core

import (
	"testing"

	"cqm/internal/fuzzy"
	"cqm/internal/sensor"
)

// scoreBatchAllocBudget is today's measured ceiling for a serial
// 64-observation ScoreBatch: three result buffers, one dispatch closure,
// and one qualityInput vector per score (the remaining per-score
// allocation — removing it is ROADMAP item 2). The //cqm:hotpath lint
// waivers enumerate the same sites; this test keeps the number from
// regressing silently.
const scoreBatchAllocBudget = 72

// TestScoreBatchAllocBaseline guards the batch scoring path's allocation
// count at its current baseline.
func TestScoreBatchAllocBaseline(t *testing.T) {
	sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{
		{Antecedent: []fuzzy.Gaussian{{Mu: 0, Sigma: 0.3}, {Mu: 0, Sigma: 1}}, Coeffs: []float64{0, 0, 0}},
		{Antecedent: []fuzzy.Gaussian{{Mu: 1, Sigma: 0.3}, {Mu: 1, Sigma: 1}}, Coeffs: []float64{0, 0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := MeasureFromSystem(sys)
	obs := make([]Observation, 64)
	for i := range obs {
		obs[i] = Observation{Cues: []float64{0.5}, Class: sensor.Context(1)}
	}
	if _, _, err := m.ScoreBatch(obs, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := m.ScoreBatch(obs, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > scoreBatchAllocBudget {
		t.Errorf("ScoreBatch(64 obs, serial) allocates %v per batch, budget %d", allocs, scoreBatchAllocBudget)
	}
}
