package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeTable(t *testing.T) {
	tests := []struct {
		name    string
		x       float64
		want    float64
		epsilon bool
	}{
		{"interior", 0.7, 0.7, false},
		{"zero", 0, 0, false},
		{"one", 1, 1, false},
		{"slightly below zero", -0.2, 0.2, false},
		{"lower fold limit", -0.5, 0.5, false},
		{"slightly above one", 1.2, 0.8, false},
		{"upper fold limit", 1.5, 0.5, false},
		{"below epsilon limit", -0.51, 0, true},
		{"above epsilon limit", 1.51, 0, true},
		{"far negative", -3, 0, true},
		{"far positive", 9, 0, true},
		{"nan", math.NaN(), 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Normalize(tt.x)
			if tt.epsilon {
				if !IsEpsilon(err) {
					t.Fatalf("err = %v, want ε state", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Normalize(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

func TestNormalizeLiteralMatchesPaperFormula(t *testing.T) {
	// On (1, 1.5] the literal formula returns 1−x (negative); the
	// production Normalize folds symmetrically to 2−x.
	lit, err := NormalizeLiteral(1.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lit-(-0.2)) > 1e-12 {
		t.Errorf("NormalizeLiteral(1.2) = %v, want -0.2", lit)
	}
	// All other branches agree with Normalize.
	for _, x := range []float64{-0.4, 0, 0.3, 1, -0.6, 1.6} {
		a, errA := Normalize(x)
		b, errB := NormalizeLiteral(x)
		if IsEpsilon(errA) != IsEpsilon(errB) {
			t.Errorf("ε disagreement at %v", x)
			continue
		}
		if errA == nil && a != b {
			t.Errorf("branch disagreement at %v: %v vs %v", x, a, b)
		}
	}
}

func TestNormalizeRangeProperty(t *testing.T) {
	// Every non-ε result lies in [0,1]; ε occurs exactly outside
	// [−0.5, 1.5].
	f := func(x float64) bool {
		if math.IsNaN(x) {
			_, err := Normalize(x)
			return IsEpsilon(err)
		}
		got, err := Normalize(x)
		inRange := x >= -0.5 && x <= 1.5
		if !inRange {
			return IsEpsilon(err)
		}
		return err == nil && got >= 0 && got <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeContinuityAtBoundaries(t *testing.T) {
	// L is continuous at 0 and 1 (the folds meet the identity branch).
	const h = 1e-9
	lo, err := Normalize(-h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-h) > 1e-12 {
		t.Errorf("left fold at 0 discontinuous: %v", lo)
	}
	hi, err := Normalize(1 + h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hi-(1-h)) > 1e-12 {
		t.Errorf("right fold at 1 discontinuous: %v", hi)
	}
}
