package core

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cqm/internal/fuzzy"
	"cqm/internal/sensor"
)

var updateGolden = flag.Bool("update", false, "rewrite the measure golden fixture")

// persistObservations synthesizes a small observation set whose
// correctness depends on the cue, so the built FIS is non-trivial.
func persistObservations(n int) []Observation {
	out := make([]Observation, 0, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n-1)
		out = append(out, Observation{
			Cues:    []float64{x},
			Class:   sensor.ContextWriting,
			Correct: x > 0.5,
		})
	}
	return out
}

func TestMeasurePersistRoundTrip(t *testing.T) {
	m, err := Build(persistObservations(60), nil, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored Measure
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	again, err := json.Marshal(&restored)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Error("marshal → unmarshal → marshal is not a fixed point")
	}
	if restored.Inputs() != m.Inputs() || restored.Rules() != m.Rules() {
		t.Errorf("shape changed: %d/%d inputs, %d/%d rules",
			restored.Inputs(), m.Inputs(), restored.Rules(), m.Rules())
	}
	// Identical scores, including identical error behavior, on a probe
	// sweep across the cue domain.
	for i := 0; i <= 10; i++ {
		cues := []float64{float64(i) / 10}
		q1, err1 := m.Score(cues, sensor.ContextWriting)
		q2, err2 := restored.Score(cues, sensor.ContextWriting)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("probe %v: error mismatch %v vs %v", cues, err1, err2)
		}
		if err1 == nil && q1 != q2 {
			t.Errorf("probe %v: score %v vs %v", cues, q1, q2)
		}
	}
}

func TestMeasurePersistEpsilonState(t *testing.T) {
	// A serialized-and-restored measure must preserve the ε sentinel
	// behavior: inputs that fire no rule score as ErrEpsilon, and the
	// degraded sentinel stays routed through L.
	m, err := Build(persistObservations(60), nil, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var restored Measure
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	farOut := []float64{1e9}
	_, origErr := m.Score(farOut, sensor.ContextWriting)
	_, restErr := restored.Score(farOut, sensor.ContextWriting)
	if !IsEpsilon(origErr) || !IsEpsilon(restErr) {
		t.Errorf("far-out probe: errors %v / %v, want ε on both", origErr, restErr)
	}
	if _, err := ScoreDegraded(); !IsEpsilon(err) {
		t.Errorf("ScoreDegraded err = %v, want ε", err)
	}
}

func TestMeasureUnmarshalErrors(t *testing.T) {
	var m Measure
	if err := json.Unmarshal([]byte(`{broken`), &m); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := json.Marshal(&Measure{}); !errors.Is(err, ErrUnbuilt) {
		// json wraps the error; fall back to a substring-free check via
		// errors.Is on the unwrapped chain.
		var unwrapped *json.MarshalerError
		if !errors.As(err, &unwrapped) || !errors.Is(unwrapped.Err, ErrUnbuilt) {
			t.Errorf("unbuilt marshal err = %v, want ErrUnbuilt", err)
		}
	}
}

// goldenMeasure is the canonical fixture measure: fixed dyadic constants,
// so its JSON is stable across platforms and floating-point environments.
func goldenMeasure(t *testing.T) *Measure {
	t.Helper()
	sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{
		{
			Antecedent: []fuzzy.Gaussian{{Mu: 0.25, Sigma: 0.5}, {Mu: 2, Sigma: 1}},
			Coeffs:     []float64{0.5, 0.125, 0.25},
		},
		{
			Antecedent: []fuzzy.Gaussian{{Mu: 0.75, Sigma: 0.5}, {Mu: 2, Sigma: 1}},
			Coeffs:     []float64{-0.5, 0.0625, 0.75},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return MeasureFromSystem(sys)
}

func TestMeasureGoldenSchema(t *testing.T) {
	// The golden fixture pins the on-disk measure schema: if a refactor
	// changes field names, nesting, or defaults, this test fails before any
	// deployed artifact stops loading.
	path := filepath.Join("testdata", "measure.golden.json")
	want, err := json.MarshalIndent(goldenMeasure(t), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(want, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	var restored Measure
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatalf("golden no longer decodes: %v", err)
	}
	again, err := json.MarshalIndent(&restored, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(again)+"\n" != string(data) {
		t.Errorf("golden round-trip drifted:\n got: %s\nwant: %s", again, data)
	}
	// The restored fixture must still score: probe at the first rule's
	// antecedent center, which activates by construction.
	q, err := restored.Score([]float64{0.25}, sensor.ContextWriting)
	if err != nil {
		t.Fatalf("golden measure cannot score: %v", err)
	}
	if q < 0 || q > 1 {
		t.Errorf("golden score %v outside [0,1]", q)
	}
}
