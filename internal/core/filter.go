package core

import (
	"fmt"

	"cqm/internal/obs"
	"cqm/internal/sensor"
)

// Filter is the application-side decision layer: accept a classification
// when its quality measure exceeds the threshold, discard it otherwise.
// ε-state classifications are always discarded.
type Filter struct {
	measure   *Measure
	threshold float64
	met       filterMetrics
}

// Instrument registers the filter's decision counters
// (cqm_filter_decisions_total with decision/filter labels) on reg; a nil
// registry turns instrumentation off.
func (f *Filter) Instrument(reg *obs.Registry) {
	f.met = newFilterMetrics(reg, "static")
}

// NewFilter returns a filter over the measure with the given threshold
// (usually Analysis.Threshold).
func NewFilter(m *Measure, threshold float64) (*Filter, error) {
	if m == nil || m.sys == nil {
		return nil, ErrUnbuilt
	}
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("core: threshold %v outside [0,1]", threshold)
	}
	return &Filter{measure: m, threshold: threshold}, nil
}

// Threshold returns the acceptance threshold s.
func (f *Filter) Threshold() float64 { return f.threshold }

// Decision is the outcome of filtering one classification.
type Decision struct {
	// Accepted reports whether the classification passed the filter.
	Accepted bool
	// Quality is the CQM q; meaningful only when Epsilon is false.
	Quality float64
	// Epsilon reports that the measure fell into the ε error state (the
	// classification is discarded).
	Epsilon bool
}

// Decide scores one classification and applies the threshold.
func (f *Filter) Decide(cues []float64, class sensor.Context) (Decision, error) {
	q, err := f.measure.Score(cues, class)
	if err != nil {
		if IsEpsilon(err) {
			d := Decision{Accepted: false, Epsilon: true}
			f.met.observe(d)
			return d, nil
		}
		return Decision{}, err
	}
	d := Decision{Accepted: q > f.threshold, Quality: q}
	f.met.observe(d)
	return d, nil
}

// FilterStats summarizes filtering a batch of observations with secondary
// knowledge — the accounting behind the paper's "discard 33 % of the
// classifications, which equals all wrong contextual classifications".
type FilterStats struct {
	Total          int
	Accepted       int
	Discarded      int
	Epsilon        int
	AcceptedRight  int
	AcceptedWrong  int
	DiscardedRight int
	DiscardedWrong int
}

// Run filters every observation and tallies the outcomes against the
// secondary knowledge.
func (f *Filter) Run(obs []Observation) (FilterStats, error) {
	if len(obs) == 0 {
		return FilterStats{}, ErrNoObservations
	}
	var s FilterStats
	for i, o := range obs {
		d, err := f.Decide(o.Cues, o.Class)
		if err != nil {
			return FilterStats{}, fmt.Errorf("core: filtering observation %d: %w", i, err)
		}
		s.Total++
		if d.Epsilon {
			s.Epsilon++
		}
		switch {
		case d.Accepted && o.Correct:
			s.Accepted++
			s.AcceptedRight++
		case d.Accepted && !o.Correct:
			s.Accepted++
			s.AcceptedWrong++
		case !d.Accepted && o.Correct:
			s.Discarded++
			s.DiscardedRight++
		default:
			s.Discarded++
			s.DiscardedWrong++
		}
	}
	return s, nil
}

// DiscardRate returns the fraction of classifications discarded — 0.33 in
// the paper's evaluation.
func (s FilterStats) DiscardRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Discarded) / float64(s.Total)
}

// AcceptedAccuracy returns the accuracy among accepted classifications —
// the downstream appliance's effective accuracy after filtering.
func (s FilterStats) AcceptedAccuracy() float64 {
	if s.Accepted == 0 {
		return 0
	}
	return float64(s.AcceptedRight) / float64(s.Accepted)
}

// RawAccuracy returns the accuracy before filtering.
func (s FilterStats) RawAccuracy() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.AcceptedRight+s.DiscardedRight) / float64(s.Total)
}

// Improvement returns the accuracy gained by filtering (accepted accuracy
// minus raw accuracy) — the paper's headline "improving the decision of
// the application by 33 %" corresponds to discarding exactly the wrong
// third of classifications.
func (s FilterStats) Improvement() float64 {
	return s.AcceptedAccuracy() - s.RawAccuracy()
}
