// Package core implements the paper's primary contribution: the Context
// Quality Measure (CQM), a real-time quality value q ∈ [0,1] for every
// context classification, produced by a second TSK fuzzy inference system
// that treats the classifier as a black box.
//
// # Architecture (paper §2)
//
// The quality system sees exactly two things: the cue vector v_C the
// classifier consumed and the class identifier c it produced. Their
// concatenation v_Q = (v_1, …, v_n, c) is the input of the quality FIS
// S̃_Q, whose designated output is 1 for a correct classification and 0
// for a wrong one. S̃_Q is constructed automatically (§2.2): subtractive
// clustering for structure, SVD least squares for the linear consequents,
// ANFIS hybrid learning with check-set early stopping for refinement.
//
// Because the automated construction cannot eliminate the training error,
// S̃_Q's raw output leaks outside [0,1]; the normalization L (§2.1.3) folds
// values in [−0.5, 0) and (1, 1.5] back into the interval and maps
// everything else to the error state ε (ErrEpsilon). The residual distance
// from {0,1} is the point: q does not just say right/wrong, it says *how*
// right or wrong.
//
// The statistical layer (§2.3) fits maximum-likelihood Gaussians to the q
// values of right and wrong classifications on a second labelled set,
// places the decision threshold s at the intersection of the two
// densities, and derives the four acceptance/rejection probabilities from
// Gaussian median cuts. A Filter built from the threshold lets an
// appliance discard low-quality classifications — the paper's AwarePen
// discards 33 % of classifications (all of the wrong ones) this way.
package core
