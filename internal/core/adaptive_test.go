package core

import (
	"errors"
	"math"
	"testing"

	"cqm/internal/sensor"
	"cqm/internal/stat"
)

func TestMeasureFromSystem(t *testing.T) {
	f := buildFixture(t, 1700)
	m := MeasureFromSystem(f.measure.System())
	o := f.testObs[0]
	a, errA := f.measure.Score(o.Cues, o.Class)
	b, errB := m.Score(o.Cues, o.Class)
	if (errA == nil) != (errB == nil) || (errA == nil && a != b) {
		t.Errorf("wrapped system scores differently: %v/%v vs %v/%v", a, errA, b, errB)
	}
}

func TestThresholdFromDensitiesFallbacks(t *testing.T) {
	// Equal-variance densities intersect at the midpoint inside [0,1].
	a, err := thresholdFromDensities(
		stat.Gaussian{Mu: 0.2, Sigma: 0.1},
		stat.Gaussian{Mu: 0.8, Sigma: 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.5) > 1e-9 {
		t.Errorf("midpoint threshold = %v", a)
	}
	// Crossing outside [0,1] but inside [-1,2]: the widened bracket finds
	// it.
	b, err := thresholdFromDensities(
		stat.Gaussian{Mu: -0.6, Sigma: 0.2},
		stat.Gaussian{Mu: -0.1, Sigma: 0.2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if b > 0 || b < -1 {
		t.Errorf("widened-bracket threshold = %v", b)
	}
	// Identical densities never cross: midpoint fallback.
	c, err := thresholdFromDensities(
		stat.Gaussian{Mu: 0.5, Sigma: 0.1},
		stat.Gaussian{Mu: 0.5, Sigma: 0.1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0.5 {
		t.Errorf("identical-density fallback = %v", c)
	}
}

func TestAdaptiveFilterValidation(t *testing.T) {
	f := buildFixture(t, 1300)
	if _, err := NewAdaptiveFilter(nil, AdaptiveConfig{}); !errors.Is(err, ErrUnbuilt) {
		t.Errorf("nil measure: %v", err)
	}
	if _, err := NewAdaptiveFilter(f.measure, AdaptiveConfig{InitialThreshold: 2}); err == nil {
		t.Error("bad threshold accepted")
	}
	if _, err := NewAdaptiveFilter(f.measure, AdaptiveConfig{Lambda: -1}); err == nil {
		t.Error("bad lambda accepted")
	}
}

func TestAdaptiveFilterConvergesToBatchThreshold(t *testing.T) {
	// Seeded with a wrong threshold and fed labelled outcomes, the
	// adaptive filter must move toward the batch-analyzed threshold.
	f := buildFixture(t, 1400)
	batch, err := Analyze(f.measure, f.testObs)
	if err != nil {
		t.Fatal(err)
	}
	af, err := NewAdaptiveFilter(f.measure, AdaptiveConfig{InitialThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Feed the test observations repeatedly as labelled feedback.
	for round := 0; round < 3; round++ {
		for _, o := range f.testObs {
			if err := af.Feedback(o.Cues, o.Class, o.Correct); err != nil {
				t.Fatal(err)
			}
		}
	}
	if af.Updates() == 0 {
		t.Fatal("threshold never re-estimated")
	}
	if math.Abs(af.Threshold()-batch.Threshold) > 0.25 {
		t.Errorf("adaptive threshold %v far from batch %v", af.Threshold(), batch.Threshold)
	}
	// The adapted filter must actually filter: accepted accuracy above
	// raw on the same observations.
	var accepted, acceptedRight, right int
	for _, o := range f.testObs {
		d, err := af.Decide(o.Cues, o.Class)
		if err != nil {
			t.Fatal(err)
		}
		if o.Correct {
			right++
		}
		if d.Accepted {
			accepted++
			if o.Correct {
				acceptedRight++
			}
		}
	}
	if accepted == 0 {
		t.Fatal("adapted filter accepts nothing")
	}
	rawAcc := float64(right) / float64(len(f.testObs))
	filtAcc := float64(acceptedRight) / float64(accepted)
	if filtAcc < rawAcc {
		t.Errorf("adaptive filtering reduced accuracy: %v -> %v", rawAcc, filtAcc)
	}
}

func TestAdaptiveFilterTracksDrift(t *testing.T) {
	// When feedback shifts (wrong classifications suddenly score higher),
	// the threshold must move up to keep rejecting them.
	f := buildFixture(t, 1500)
	af, err := NewAdaptiveFilter(f.measure, AdaptiveConfig{InitialThreshold: 0.5, Lambda: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	right, wrong := SplitByCorrectness(f.testObs)
	if len(right) < 3 || len(wrong) < 3 {
		t.Skip("fixture lacks both outcomes")
	}
	for round := 0; round < 5; round++ {
		for _, o := range right {
			if err := af.Feedback(o.Cues, o.Class, true); err != nil {
				t.Fatal(err)
			}
		}
		for _, o := range wrong {
			if err := af.Feedback(o.Cues, o.Class, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := af.Threshold()
	// Drift: present previously-right-scoring observations as wrong; the
	// wrong density climbs, pushing the threshold up.
	for round := 0; round < 10; round++ {
		for _, o := range right {
			if err := af.Feedback(o.Cues, o.Class, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if af.Threshold() <= before {
		t.Errorf("threshold did not rise under drift: %v -> %v", before, af.Threshold())
	}
}

func TestAdaptiveFilterEpsilonFeedbackIgnored(t *testing.T) {
	f := buildFixture(t, 1600)
	af, err := NewAdaptiveFilter(f.measure, AdaptiveConfig{InitialThreshold: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Feedback([]float64{1e9, 1e9, 1e9}, sensor.ContextWriting, true); err != nil {
		t.Fatalf("ε feedback errored: %v", err)
	}
	if af.Updates() != 0 {
		t.Error("ε feedback triggered an update")
	}
	d, err := af.Decide([]float64{1e9, 1e9, 1e9}, sensor.ContextWriting)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Epsilon || d.Accepted {
		t.Errorf("ε decision = %+v", d)
	}
}
