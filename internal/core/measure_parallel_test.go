package core

import (
	"reflect"
	"sync"
	"testing"

	"cqm/internal/obs"
	"cqm/internal/parallel"
)

// TestScoreBatchSerialParallelEquivalence: batch scoring must reproduce
// the serial per-observation path bit-for-bit at every worker count.
func TestScoreBatchSerialParallelEquivalence(t *testing.T) {
	f := buildFixture(t, 100)
	wantQ, wantOK, err := f.measure.ScoreBatch(f.testObs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		gotQ, gotOK, err := f.measure.ScoreBatch(f.testObs, parallel.New(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// reflect.DeepEqual compares the float values exactly — each slot
		// is one independent FIS evaluation, so parallelism must not
		// change a single bit.
		if !reflect.DeepEqual(gotQ, wantQ) || !reflect.DeepEqual(gotOK, wantOK) {
			t.Fatalf("workers=%d: batch result differs from serial", workers)
		}
	}
}

// TestScoreBatchMatchesScoreObservations: the compacting wrapper must
// report exactly what the batch API reports.
func TestScoreBatchMatchesScoreObservations(t *testing.T) {
	f := buildFixture(t, 100)
	qs, correct, epsilon, err := f.measure.ScoreObservations(f.testObs)
	if err != nil {
		t.Fatal(err)
	}
	batchQ, ok, err := f.measure.ScoreBatch(f.testObs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wantQ []float64
	var wantCorrect []bool
	var wantEps []int
	for i := range f.testObs {
		if !ok[i] {
			wantEps = append(wantEps, i)
			continue
		}
		wantQ = append(wantQ, batchQ[i])
		wantCorrect = append(wantCorrect, f.testObs[i].Correct)
	}
	if !reflect.DeepEqual(qs, wantQ) || !reflect.DeepEqual(correct, wantCorrect) || !reflect.DeepEqual(epsilon, wantEps) {
		t.Fatal("ScoreObservations disagrees with ScoreBatch")
	}
}

// TestScoreBatchSharedPoolConcurrentCallers hammers one shared pool from
// many concurrent ScoreBatch callers — the -race proof that the pool and
// the measure's metrics hot path are safe to share.
func TestScoreBatchSharedPoolConcurrentCallers(t *testing.T) {
	f := buildFixture(t, 100)
	reg := obs.NewRegistry()
	f.measure.Instrument(reg)
	defer f.measure.Instrument(nil)
	pool := parallel.New(4)
	pool.Instrument(reg)
	wantQ, wantOK, err := f.measure.ScoreBatch(f.testObs, nil)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	const reps = 5
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				q, ok, err := f.measure.ScoreBatch(f.testObs, pool)
				if err != nil {
					errs[c] = err
					return
				}
				if !reflect.DeepEqual(q, wantQ) || !reflect.DeepEqual(ok, wantOK) {
					errs[c] = errMismatch
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", c, err)
		}
	}
}

// errMismatch flags a shared-pool caller that observed a drifting result.
var errMismatch = errString("scorebatch result drifted under a shared pool")

type errString string

func (e errString) Error() string { return string(e) }
