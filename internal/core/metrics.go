package core

import (
	"strconv"

	"cqm/internal/anfis"
	"cqm/internal/obs"
)

// Training-progress hooks, re-exported so callers configure them through
// BuildConfig without importing the anfis layer.
type (
	// TrainObserver receives per-epoch hybrid-learning events.
	TrainObserver = anfis.TrainObserver
	// EpochEvent is one completed training epoch.
	EpochEvent = anfis.EpochEvent
	// StopEvent is the end of a training run.
	StopEvent = anfis.StopEvent
	// TrainObserverFuncs adapts plain functions to a TrainObserver.
	TrainObserverFuncs = anfis.ObserverFuncs
	// TrainState is the complete resumable state of a hybrid-learning run;
	// checkpointing observers capture it and BuildConfig.Hybrid.Resume
	// restarts from it.
	TrainState = anfis.TrainState
	// SnapshotEvent hands a checkpointable TrainState to a snapshot-aware
	// observer after each completed epoch.
	SnapshotEvent = anfis.SnapshotEvent
)

// TrainObservers fans events out to several observers.
var TrainObservers = anfis.Observers

// Metric names of the core pipeline. Every layer registers under these so
// dashboards and tests address one stable vocabulary.
const (
	// MetricScored counts quality scorings (ε included).
	MetricScored = "cqm_score_total"
	// MetricEpsilon counts scorings that fell into the ε error state; the
	// ε-rate is MetricEpsilon / MetricScored.
	MetricEpsilon = "cqm_score_epsilon_total"
	// MetricQuality is the distribution of produced q values.
	MetricQuality = "cqm_quality"
	// MetricFilterDecisions counts filter outcomes, labelled
	// decision=accept|reject|epsilon and filter=static|adaptive.
	MetricFilterDecisions = "cqm_filter_decisions_total"
	// MetricFeedback counts adaptive-filter feedbacks, labelled
	// outcome=right|wrong|epsilon.
	MetricFeedback = "cqm_adaptive_feedback_total"
	// MetricThresholdUpdates counts adaptive threshold re-estimations.
	MetricThresholdUpdates = "cqm_adaptive_updates_total"
	// MetricThreshold is the current adaptive acceptance threshold.
	MetricThreshold = "cqm_adaptive_threshold"
	// MetricWidenings counts graceful-degradation threshold widenings
	// triggered by sustained ε rates.
	MetricWidenings = "cqm_adaptive_widenings_total"
	// MetricTrainEpochs counts hybrid-learning epochs run.
	MetricTrainEpochs = "cqm_train_epochs_total"
	// MetricTrainRMSE is the most recent training RMSE.
	MetricTrainRMSE = "cqm_train_rmse"
	// MetricCheckRMSE is the most recent check-set RMSE.
	MetricCheckRMSE = "cqm_train_check_rmse"
)

// metricsObserver bridges training events into a registry: an epoch
// counter, live train/check RMSE gauges, and a stop event carrying the
// early-stop reason.
func metricsObserver(reg *obs.Registry) anfis.TrainObserver {
	reg.Help(MetricTrainEpochs, "Hybrid-learning epochs run.")
	reg.Help(MetricTrainRMSE, "Training RMSE after the most recent epoch.")
	reg.Help(MetricCheckRMSE, "Check-set RMSE after the most recent epoch.")
	epochs := reg.Counter(MetricTrainEpochs)
	trainRMSE := reg.Gauge(MetricTrainRMSE)
	checkRMSE := reg.Gauge(MetricCheckRMSE)
	return anfis.ObserverFuncs{
		OnEpoch: func(ev anfis.EpochEvent) {
			epochs.Inc()
			trainRMSE.Set(ev.TrainRMSE)
			if ev.HasCheck {
				checkRMSE.Set(ev.CheckRMSE)
			}
		},
		OnStop: func(ev anfis.StopEvent) {
			reg.RecordEvent("cqm_train_stop",
				"reason", string(ev.Reason),
				"epochs", strconv.Itoa(ev.Epochs),
				"best_epoch", strconv.Itoa(ev.BestEpoch),
			)
		},
	}
}

// measureMetrics are the pre-resolved hot-path metrics of a Measure. All
// fields nil (the zero value) means instrumentation is off and every
// update is a single nil-check — no allocation, no registry lookup.
type measureMetrics struct {
	scored  *obs.Counter
	epsilon *obs.Counter
	quality *obs.Histogram
}

// newMeasureMetrics resolves the measure's metrics once.
func newMeasureMetrics(reg *obs.Registry) measureMetrics {
	if reg == nil {
		return measureMetrics{}
	}
	reg.Help(MetricScored, "Quality scorings performed (includes epsilon outcomes).")
	reg.Help(MetricEpsilon, "Quality scorings that fell into the epsilon error state.")
	reg.Help(MetricQuality, "Distribution of produced quality values q.")
	return measureMetrics{
		scored:  reg.Counter(MetricScored),
		epsilon: reg.Counter(MetricEpsilon),
		quality: reg.Histogram(MetricQuality, obs.UnitBuckets),
	}
}

// filterMetrics are the pre-resolved decision counters of a filter.
type filterMetrics struct {
	accepted *obs.Counter
	rejected *obs.Counter
	epsilon  *obs.Counter
}

// newFilterMetrics resolves decision counters for the static or adaptive
// filter variant.
func newFilterMetrics(reg *obs.Registry, variant string) filterMetrics {
	if reg == nil {
		return filterMetrics{}
	}
	reg.Help(MetricFilterDecisions, "Filter outcomes by decision and filter variant.")
	return filterMetrics{
		accepted: reg.Counter(MetricFilterDecisions, "decision", "accept", "filter", variant),
		rejected: reg.Counter(MetricFilterDecisions, "decision", "reject", "filter", variant),
		epsilon:  reg.Counter(MetricFilterDecisions, "decision", "epsilon", "filter", variant),
	}
}

// observe tallies one decision.
func (m filterMetrics) observe(d Decision) {
	switch {
	case d.Epsilon:
		m.epsilon.Inc()
	case d.Accepted:
		m.accepted.Inc()
	default:
		m.rejected.Inc()
	}
}

// adaptiveMetrics extends filterMetrics with the feedback loop's state.
type adaptiveMetrics struct {
	filterMetrics
	feedbackRight   *obs.Counter
	feedbackWrong   *obs.Counter
	feedbackEpsilon *obs.Counter
	updates         *obs.Counter
	widenings       *obs.Counter
	threshold       *obs.Gauge
}

// newAdaptiveMetrics resolves the adaptive filter's metrics.
func newAdaptiveMetrics(reg *obs.Registry) adaptiveMetrics {
	if reg == nil {
		return adaptiveMetrics{}
	}
	reg.Help(MetricFeedback, "Adaptive-filter feedbacks by outcome.")
	reg.Help(MetricThresholdUpdates, "Adaptive threshold re-estimations.")
	reg.Help(MetricThreshold, "Current adaptive acceptance threshold.")
	reg.Help(MetricWidenings, "Threshold widenings under sustained ε rates.")
	return adaptiveMetrics{
		filterMetrics:   newFilterMetrics(reg, "adaptive"),
		feedbackRight:   reg.Counter(MetricFeedback, "outcome", "right"),
		feedbackWrong:   reg.Counter(MetricFeedback, "outcome", "wrong"),
		feedbackEpsilon: reg.Counter(MetricFeedback, "outcome", "epsilon"),
		updates:         reg.Counter(MetricThresholdUpdates),
		widenings:       reg.Counter(MetricWidenings),
		threshold:       reg.Gauge(MetricThreshold),
	}
}

// ThresholdEvent reports one adaptive-threshold move to an observer.
type ThresholdEvent struct {
	// Old and New are the thresholds before and after the re-estimation.
	Old, New float64
	// Updates is the total number of re-estimations performed, this one
	// included.
	Updates int
}
