package core

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"cqm/internal/classify"
	"cqm/internal/dataset"
	"cqm/internal/sensor"
	"cqm/internal/stat"
)

// fixture holds a fully assembled CQM pipeline for integration tests.
type fixture struct {
	clf      classify.Classifier
	trainObs []Observation
	checkObs []Observation
	testObs  []Observation
	measure  *Measure
}

// buildFixture assembles the paper's pipeline on synthetic AwarePen data:
// classifier trained on clean recordings; quality FIS trained on a mixed
// stream with transitions and off-style users, which produces genuinely
// right and wrong classifications.
func buildFixture(t testing.TB, seed int64) *fixture {
	t.Helper()
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			{
				Segments: []sensor.Segment{
					{Context: sensor.ContextLying, Duration: 10},
					{Context: sensor.ContextWriting, Duration: 10},
					{Context: sensor.ContextPlaying, Duration: 10},
				},
			},
		},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		t.Fatal(err)
	}

	// The quality sets come from harder sessions: office workflows with
	// transitions plus an off-style user whose writing resembles playing.
	wild := sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(wild),
			sensor.OfficeSession(sensor.Style{Amplitude: 0.5, Tempo: 0.8, Irregularity: 0.5}),
			sensor.OfficeSession(wild),
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(wild),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed.Shuffle(seed + 2)
	trainSet, checkSet, testSet, err := mixed.Split(0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	f := &fixture{clf: clf}
	if f.trainObs, err = Observe(clf, trainSet); err != nil {
		t.Fatal(err)
	}
	if f.checkObs, err = Observe(clf, checkSet); err != nil {
		t.Fatal(err)
	}
	if f.testObs, err = Observe(clf, testSet); err != nil {
		t.Fatal(err)
	}
	if f.measure, err = Build(f.trainObs, f.checkObs, BuildConfig{}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestObserveRecordsCorrectness(t *testing.T) {
	f := buildFixture(t, 100)
	right, wrong := SplitByCorrectness(f.trainObs)
	if len(right) == 0 || len(wrong) == 0 {
		t.Fatalf("fixture degenerate: %d right, %d wrong", len(right), len(wrong))
	}
	// The classifier should be mostly right but meaningfully wrong.
	frac := float64(len(wrong)) / float64(len(f.trainObs))
	if frac < 0.03 || frac > 0.6 {
		t.Errorf("wrong fraction = %v, want a realistic error rate", frac)
	}
}

func TestAugmentObservations(t *testing.T) {
	set := &dataset.Set{}
	set.Append(
		dataset.Sample{Cues: []float64{0.1, 0.2, 0.3}, Truth: sensor.ContextWriting, Pure: true},
		dataset.Sample{Cues: []float64{0.9, 0.8, 0.7}, Truth: sensor.ContextPlaying},
	)
	obs, err := AugmentObservations(set, sensor.AllContexts())
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 6 {
		t.Fatalf("augmented %d observations, want 6 (2 samples x 3 classes)", len(obs))
	}
	correct := 0
	for _, o := range obs {
		if o.Correct {
			correct++
		}
	}
	if correct != 2 {
		t.Errorf("%d correct pairings, want exactly one per sample", correct)
	}
	// The augmented cues must not alias the sample storage.
	obs[0].Cues[0] = 99
	if set.Samples[0].Cues[0] == 99 {
		t.Error("augmentation aliases sample cues")
	}
	if _, err := AugmentObservations(&dataset.Set{}, sensor.AllContexts()); !errors.Is(err, ErrNoObservations) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := AugmentObservations(set, nil); !errors.Is(err, ErrNoObservations) {
		t.Errorf("no classes: %v", err)
	}
}

func TestObserveErrors(t *testing.T) {
	if _, err := Observe(nil, &dataset.Set{}); !errors.Is(err, ErrNoObservations) {
		t.Errorf("empty: %v", err)
	}
}

func TestMeasureScoresSeparateRightFromWrong(t *testing.T) {
	f := buildFixture(t, 200)
	qs, correct, _, err := f.measure.ScoreObservations(f.testObs)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) < 10 {
		t.Fatalf("only %d scored observations", len(qs))
	}
	// The CQM must rank right above wrong classifications: AUC well above
	// chance.
	auc := stat.AUC(stat.ROC(qs, correct))
	if auc < 0.75 {
		t.Errorf("quality AUC = %v, want >= 0.75", auc)
	}
}

func TestMeasureInputsAndRules(t *testing.T) {
	f := buildFixture(t, 300)
	if f.measure.Inputs() != 4 {
		t.Errorf("Inputs = %d, want 4 (3 cues + class)", f.measure.Inputs())
	}
	if f.measure.Rules() < 1 {
		t.Error("no rules in the quality FIS")
	}
	if f.measure.System() == nil {
		t.Error("System() nil")
	}
}

func TestBuildAutoCheckSplit(t *testing.T) {
	f := buildFixture(t, 400)
	// Passing nil check must still build (auto-split).
	m, err := Build(f.trainObs, nil, BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rules() == 0 {
		t.Error("auto-check build produced no rules")
	}
}

func TestBuildSkipHybrid(t *testing.T) {
	f := buildFixture(t, 500)
	m, err := Build(f.trainObs, f.checkObs, BuildConfig{SkipHybrid: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, correct, _, err := m.ScoreObservations(f.testObs)
	if err != nil {
		t.Fatal(err)
	}
	if auc := stat.AUC(stat.ROC(qs, correct)); auc < 0.6 {
		t.Errorf("construction-only AUC = %v, want above chance", auc)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil, BuildConfig{}); !errors.Is(err, ErrNoObservations) {
		t.Errorf("empty: %v", err)
	}
}

func TestMeasureUnbuiltErrors(t *testing.T) {
	var m *Measure
	if _, err := m.Score([]float64{1}, sensor.ContextLying); !errors.Is(err, ErrUnbuilt) {
		t.Errorf("nil measure Score: %v", err)
	}
	var m2 Measure
	if _, err := m2.RawScore([]float64{1}, sensor.ContextLying); !errors.Is(err, ErrUnbuilt) {
		t.Errorf("zero measure RawScore: %v", err)
	}
	if _, _, _, err := m2.ScoreObservations(nil); !errors.Is(err, ErrUnbuilt) {
		t.Errorf("zero measure ScoreObservations: %v", err)
	}
	if m2.Rules() != 0 || m2.Inputs() != 0 {
		t.Error("zero measure should report 0 rules and inputs")
	}
}

func TestMeasureJSONRoundTrip(t *testing.T) {
	f := buildFixture(t, 600)
	data, err := json.Marshal(f.measure)
	if err != nil {
		t.Fatal(err)
	}
	var back Measure
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for _, o := range f.testObs[:5] {
		a, errA := f.measure.Score(o.Cues, o.Class)
		b, errB := back.Score(o.Cues, o.Class)
		if IsEpsilon(errA) != IsEpsilon(errB) {
			t.Fatal("ε disagreement after round trip")
		}
		if errA == nil && a != b {
			t.Fatalf("score differs after round trip: %v vs %v", a, b)
		}
	}
	var m Measure
	if _, err := json.Marshal(&m); !errors.Is(err, ErrUnbuilt) {
		t.Errorf("marshal unbuilt: %v", err)
	}
}

func TestAnalyzeProducesPaperShape(t *testing.T) {
	f := buildFixture(t, 700)
	a, err := Analyze(f.measure, f.testObs)
	if err != nil {
		t.Fatal(err)
	}
	// Right density above wrong density.
	if a.Right.Mu <= a.Wrong.Mu {
		t.Errorf("right mean %v not above wrong mean %v", a.Right.Mu, a.Wrong.Mu)
	}
	// Threshold between the means and inside [0,1].
	if a.Threshold <= a.Wrong.Mu || a.Threshold >= a.Right.Mu {
		t.Errorf("threshold %v not between means (%v, %v)", a.Threshold, a.Wrong.Mu, a.Right.Mu)
	}
	if a.Threshold < 0 || a.Threshold > 1 {
		t.Errorf("threshold %v outside [0,1]", a.Threshold)
	}
	// The identity the paper reports: P(right|q>s) == P(wrong|q<s).
	if diff := a.PRightAccept - a.PWrongReject; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("median-cut identity violated: %v vs %v", a.PRightAccept, a.PWrongReject)
	}
	// True decisions dominate false ones.
	if a.PRightAccept < 0.5 {
		t.Errorf("PRightAccept = %v, want > 0.5", a.PRightAccept)
	}
	if a.PWrongAccept > 0.3 {
		t.Errorf("PWrongAccept = %v, want small", a.PWrongAccept)
	}
	if a.PRightReject > 0.4 {
		t.Errorf("PRightReject = %v, want small", a.PRightReject)
	}
}

func TestAnalyzeOneSided(t *testing.T) {
	f := buildFixture(t, 800)
	right, _ := SplitByCorrectness(f.testObs)
	if _, err := Analyze(f.measure, right); !errors.Is(err, ErrOneSided) {
		t.Errorf("all-right: %v", err)
	}
}

func TestFilterImprovesAcceptedAccuracy(t *testing.T) {
	f := buildFixture(t, 900)
	a, err := Analyze(f.measure, f.checkObs)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := NewFilter(f.measure, a.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := filter.Run(f.testObs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != len(f.testObs) {
		t.Fatalf("stats.Total = %d", stats.Total)
	}
	if stats.Accepted+stats.Discarded != stats.Total {
		t.Error("accept/discard accounting broken")
	}
	if stats.AcceptedAccuracy() <= stats.RawAccuracy() {
		t.Errorf("filtering did not improve accuracy: raw %v, accepted %v",
			stats.RawAccuracy(), stats.AcceptedAccuracy())
	}
	if stats.Improvement() <= 0 {
		t.Errorf("Improvement = %v, want > 0", stats.Improvement())
	}
}

func TestFilterDecideAndValidation(t *testing.T) {
	f := buildFixture(t, 1000)
	if _, err := NewFilter(nil, 0.5); !errors.Is(err, ErrUnbuilt) {
		t.Errorf("nil measure: %v", err)
	}
	if _, err := NewFilter(f.measure, 1.5); err == nil {
		t.Error("out-of-range threshold accepted")
	}
	filter, err := NewFilter(f.measure, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(filter.Threshold()-0.8) > 1e-12 {
		t.Error("Threshold() wrong")
	}
	o := f.testObs[0]
	d, err := filter.Decide(o.Cues, o.Class)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Epsilon && (d.Quality < 0 || d.Quality > 1) {
		t.Errorf("quality %v outside [0,1]", d.Quality)
	}
	// Far-out-of-range cues must land in the ε state, not error.
	dFar, err := filter.Decide([]float64{1e9, 1e9, 1e9}, sensor.ContextWriting)
	if err != nil {
		t.Fatal(err)
	}
	if !dFar.Epsilon || dFar.Accepted {
		t.Errorf("far input: %+v, want discarded ε", dFar)
	}
	if _, err := filter.Run(nil); !errors.Is(err, ErrNoObservations) {
		t.Errorf("empty run: %v", err)
	}
}

func TestFilterStatsArithmetic(t *testing.T) {
	s := FilterStats{
		Total: 24, Accepted: 16, Discarded: 8,
		AcceptedRight: 16, AcceptedWrong: 0,
		DiscardedRight: 0, DiscardedWrong: 8,
	}
	if got := s.DiscardRate(); got != 1.0/3.0 {
		t.Errorf("DiscardRate = %v, want 1/3", got)
	}
	if got := s.AcceptedAccuracy(); got != 1 {
		t.Errorf("AcceptedAccuracy = %v, want 1", got)
	}
	if got := s.RawAccuracy(); got != 2.0/3.0 {
		t.Errorf("RawAccuracy = %v, want 2/3", got)
	}
	if got := s.Improvement(); got < 1.0/3.0-1e-12 || got > 1.0/3.0+1e-12 {
		t.Errorf("Improvement = %v, want 1/3", got)
	}
	var zero FilterStats
	if zero.DiscardRate() != 0 || zero.AcceptedAccuracy() != 0 || zero.RawAccuracy() != 0 {
		t.Error("zero stats should report 0 rates")
	}
}

func BenchmarkMeasureScore(b *testing.B) {
	f := buildFixture(b, 1100)
	o := f.testObs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.measure.Score(o.Cues, o.Class); err != nil && !IsEpsilon(err) {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildMeasure(b *testing.B) {
	f := buildFixture(b, 1200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A short hybrid phase keeps the benchmark affordable.
		cfg := BuildConfig{}
		cfg.Hybrid.Epochs = 5
		if _, err := Build(f.trainObs, f.checkObs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
