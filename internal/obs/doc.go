// Package obs is the observability layer of the CQM reproduction: a
// stdlib-only, concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms, timers) plus a lightweight span/event API,
// with Prometheus text-format and JSON exposition.
//
// The package is designed around two constraints of a production context
// pipeline:
//
//   - Instrumented hot paths (Measure.Score, Bus.Publish) must cost
//     nothing when observability is off. Every metric type is nil-safe:
//     methods on a nil *Counter, *Gauge, *Histogram or *Timer are no-ops,
//     so call sites hold pre-resolved metric pointers and never branch on
//     a registry. A nil *Registry likewise hands out nil metrics.
//
//   - Updates must be safe from concurrent goroutines without a global
//     lock on the hot path. Counters and gauges are single atomics;
//     histogram buckets are per-bucket atomics; only metric *registration*
//     takes the registry mutex.
//
// Exposition is pull-based: WritePrometheus renders the classic text
// format (sorted, deterministic — goldens stay stable), Snapshot/WriteJSON
// render a structured JSON view, and Handler serves both over HTTP
// (Prometheus by default, ?format=json for the snapshot).
//
// Context-aware middleware surveys treat monitoring of context
// acquisition and dissemination as a first-class middleware service; this
// package is that service for the paper's quality pipeline — every layer
// (ANFIS training, quality scoring, filtering, the AwareOffice bus)
// reports through it.
package obs
