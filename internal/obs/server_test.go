package obs

import (
	"net/http/httptest"
	"strconv"
	"testing"
)

func TestSetEventCapacityResizesAndCounts(t *testing.T) {
	r := NewRegistry()
	r.SetEventCapacity(4)
	for i := 0; i < 10; i++ {
		r.RecordEvent("e", "i", strconv.Itoa(i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := strconv.Itoa(6 + i); ev.Attrs["i"] != want {
			t.Errorf("event %d attr = %q, want %q", i, ev.Attrs["i"], want)
		}
	}
	if got := r.EventsRecorded(); got != 10 {
		t.Errorf("EventsRecorded = %d, want 10 (lifetime total survives wraparound)", got)
	}
}

func TestSetEventCapacityShrinkKeepsNewest(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 6; i++ {
		r.RecordEvent("e", "i", strconv.Itoa(i))
	}
	r.SetEventCapacity(2)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Attrs["i"] != "4" || evs[1].Attrs["i"] != "5" {
		t.Fatalf("after shrink got %+v, want newest events 4 and 5", evs)
	}
	// Growing back must not resurrect discarded events.
	r.SetEventCapacity(8)
	if got := len(r.Events()); got != 2 {
		t.Errorf("after grow retained %d events, want 2", got)
	}
	r.RecordEvent("e", "i", "6")
	evs = r.Events()
	if len(evs) != 3 || evs[2].Attrs["i"] != "6" {
		t.Errorf("after grow+record got %+v, want 4,5,6", evs)
	}
	if got := r.EventsRecorded(); got != 7 {
		t.Errorf("EventsRecorded = %d, want 7", got)
	}
}

func TestNewMuxRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	for _, tc := range []struct {
		name  string
		pprof bool
		path  string
		want  int
	}{
		{"metrics", false, "/metrics", 200},
		{"pprof off", false, "/debug/pprof/", 404},
		{"pprof on", true, "/debug/pprof/", 200},
	} {
		mux := NewMux(MuxConfig{Registry: r, Pprof: tc.pprof})
		req := httptest.NewRequest("GET", tc.path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Errorf("%s: GET %s = %d, want %d", tc.name, tc.path, rec.Code, tc.want)
		}
	}
}
