package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheusGolden(t *testing.T) {
	// The exposition is fully deterministic (families by name, series by
	// label signature), so an exact golden comparison is safe.
	r := NewRegistry()
	r.Help("requests_total", "Total requests.")
	r.Counter("requests_total", "method", "get").Add(3)
	r.Counter("requests_total", "method", "put").Inc()
	r.Gauge("temp_celsius").Set(21.5)
	h := r.Histogram("latency_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total{method="get"} 3
requests_total{method="put"} 1
# TYPE temp_celsius gauge
temp_celsius 21.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Help("odd", "line one\nwith \\ slash")
	r.Gauge("odd", "path", `C:\tmp
"quoted"`).Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP odd line one\nwith \\ slash
# TYPE odd gauge
odd{path="C:\\tmp\n\"quoted\""} 1
`
	if got := b.String(); got != want {
		t.Errorf("escaping mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelOrderDoesNotSplitSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "b", "2", "a", "1").Inc()
	r.Counter("x_total", "a", "1", "b", "2").Inc()
	if got := r.Counter("x_total", "a", "1", "b", "2").Value(); got != 2 {
		t.Errorf("label reordering split the series: value = %d, want 2", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "x_total{a=\"1\",b=\"2\"} 2\n"; !strings.Contains(got, want) {
		t.Errorf("exposition %q missing %q", got, want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m_total")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1abc", "has space", "dash-ed", "utf8µ"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name)
		}()
	}
}

func TestOddLabelListPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("odd label list did not panic")
		}
	}()
	r.Counter("x_total", "key_without_value")
}
