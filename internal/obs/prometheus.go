package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Output is fully deterministic:
// families sort by name, series by label signature — golden tests stay
// stable. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelBlock(s.labels, "", 0), s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelBlock(s.labels, "", 0), formatFloat(s.g.Value()))
		return err
	default:
		bounds, cumulative := s.h.Buckets()
		for i, ub := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelBlock(s.labels, "le", ub), cumulative[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelBlock(s.labels, "le", math.Inf(1)), s.h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelBlock(s.labels, "", 0), formatFloat(s.h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, labelBlock(s.labels, "", 0), s.h.Count())
		return err
	}
}

// labelBlock renders {k="v",...}, optionally appending an le bound, or
// the empty string when there are no labels at all.
func labelBlock(labels []string, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		b.WriteString(formatLe(le))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text-format rules.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes help text per the text-format rules.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
