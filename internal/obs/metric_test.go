package obs

import (
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	// The whole instrumentation story rests on this: a nil registry hands
	// out nil metrics and every operation on them is a safe no-op, so
	// call sites never branch on "is metrics enabled".
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", nil)
	tm := r.Timer("y_seconds", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	tm.Observe(time.Second)
	tm.Time(func() {})
	sw := tm.Start()
	sw.Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics reported non-zero values")
	}
	if bounds, cum := h.Buckets(); bounds != nil || cum != nil {
		t.Error("nil histogram reported buckets")
	}
	r.Help("x_total", "ignored")
	r.RecordEvent("ev")
	if evs := r.Events(); evs != nil {
		t.Errorf("nil registry reported events: %v", evs)
	}
	span := r.StartSpan("op")
	span.End()
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Errorf("WritePrometheus on nil registry: %v", err)
	}
	if err := r.WriteJSON(discard{}); err != nil {
		t.Errorf("WriteJSON on nil registry: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Re-resolve inside the goroutine: registration itself must
			// also be race-free and return the same series.
			c := r.Counter("hits_total", "worker", "shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "worker", "shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("level")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*perWorker)*0.5; got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", UnitBuckets)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%10) / 10)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != len(UnitBuckets) || len(cum) != len(UnitBuckets) {
		t.Fatalf("buckets: %d bounds, %d counts", len(bounds), len(cum))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", cum)
		}
	}
	// Every observation is ≤ 1.0, the last bound.
	if cum[len(cum)-1] != workers*perWorker {
		t.Errorf("last bucket = %d, want %d", cum[len(cum)-1], workers*perWorker)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("v", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	_, cum := h.Buckets()
	// le=1: {0.5, 1}; le=2: +{1.5}; le=5: +{3}; +Inf (Count): +{10}.
	want := []int64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 16 {
		t.Errorf("sum = %v, want 16", h.Sum())
	}
}

func TestTimerObservesSeconds(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("op_seconds", []float64{1, 10})
	tm.Observe(500 * time.Millisecond)
	tm.Observe(2 * time.Second)
	h := r.Histogram("op_seconds", nil)
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	if h.Sum() != 2.5 {
		t.Errorf("sum = %v, want 2.5", h.Sum())
	}
}

func TestBucketGenerators(t *testing.T) {
	lin := LinearBuckets(0, 2, 3)
	if len(lin) != 3 || lin[0] != 0 || lin[1] != 2 || lin[2] != 4 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if len(exp) != 3 || exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
}
