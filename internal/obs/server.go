package obs

import (
	"net/http"
	"net/http/pprof"
)

// MuxConfig configures NewMux, the shared HTTP surface of every serving
// binary.
type MuxConfig struct {
	// Registry serves /metrics (nil omits the route).
	Registry *Registry
	// Quality, when non-nil, serves /quality.
	Quality http.Handler
	// Pprof, when true, mounts the net/http/pprof profiling handlers
	// under /debug/pprof/. Off by default: profiling endpoints expose
	// internals and belong behind an explicit flag.
	Pprof bool
}

// NewMux assembles the observability mux every -metrics-addr server
// shares: /metrics, optionally /quality, and — only when asked —
// /debug/pprof/. Handlers are mounted explicitly rather than through the
// pprof package's init-time DefaultServeMux registration, so profiling is
// truly absent unless enabled.
func NewMux(cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	if cfg.Registry != nil {
		mux.Handle("/metrics", cfg.Registry.Handler())
	}
	if cfg.Quality != nil {
		mux.Handle("/quality", cfg.Quality)
	}
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
