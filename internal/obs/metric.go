package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil *Counter is a no-op, so disabled instrumentation costs one
// predictable branch and zero allocations.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as IEEE-754 bits in a
// single atomic word. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add applies a delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// bucket at the end. Buckets are per-bucket atomics so concurrent
// observers never contend on a lock. A nil *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64
	n       atomic.Int64
}

// newHistogram builds a histogram over the given ascending upper bounds.
func newHistogram(bounds []float64) *Histogram {
	own := make([]float64, len(bounds))
	copy(own, bounds)
	return &Histogram{bounds: own, counts: make([]atomic.Int64, len(own))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Bucket sets are small (≤ ~20); linear scan beats binary search.
	placed := false
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the upper bounds and the *cumulative* counts per bound
// (Prometheus semantics); the final +Inf count equals Count().
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]int64, len(h.bounds))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// Timer records durations (in seconds) into a histogram. A nil *Timer is a
// no-op.
type Timer struct {
	h *Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.h.Observe(d.Seconds())
}

// Time runs fn and records its wall-clock duration. It works on a nil
// receiver (fn still runs, nothing is recorded).
//
//lint:ignore nondeterminism measuring wall-clock time is this type's purpose
func (t *Timer) Time(fn func()) {
	if t == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	t.h.Observe(time.Since(start).Seconds())
}

// Stopwatch is one in-flight timing; Stop records it.
type Stopwatch struct {
	t     *Timer
	start time.Time
}

// Start begins a stopwatch. On a nil timer the stopwatch is inert.
//
//lint:ignore nondeterminism measuring wall-clock time is this type's purpose
func (t *Timer) Start() Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{t: t, start: time.Now()}
}

// Stop records the elapsed time and returns it.
//
//lint:ignore nondeterminism measuring wall-clock time is this type's purpose
func (s Stopwatch) Stop() time.Duration {
	if s.t == nil {
		return 0
	}
	d := time.Since(s.start)
	s.t.h.Observe(d.Seconds())
	return d
}

// DefBuckets are general-purpose latency bounds in seconds (Prometheus'
// classic defaults).
var DefBuckets = []float64{
	.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// UnitBuckets are ten equal bounds over [0,1] — the natural buckets for
// quality values q ∈ [0,1].
var UnitBuckets = []float64{
	0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1,
}

// LinearBuckets returns count ascending bounds starting at start, spaced
// by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count ascending bounds starting at start,
// each factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
