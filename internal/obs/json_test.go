package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "k", "v").Add(7)
	r.Gauge("b").Set(2.5)
	h := r.Histogram("c", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	r.RecordEvent("boot", "version", "1")

	snap := r.Snapshot()
	if v, ok := snap.Counter("a_total", "k", "v"); !ok || v != 7 {
		t.Errorf("Counter lookup = %d, %v; want 7, true", v, ok)
	}
	if _, ok := snap.Counter("a_total", "k", "other"); ok {
		t.Error("Counter lookup matched wrong labels")
	}
	if _, ok := snap.Counter("missing_total"); ok {
		t.Error("Counter lookup matched missing family")
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 2.5 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 2 || snap.Histograms[0].Sum != 2 {
		t.Errorf("histograms = %+v", snap.Histograms)
	}
	if len(snap.Events) != 1 || snap.Events[0].Name != "boot" || snap.Events[0].Attrs["version"] != "1" {
		t.Errorf("events = %+v", snap.Events)
	}

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if v, ok := back.Counter("a_total", "k", "v"); !ok || v != 7 {
		t.Errorf("decoded counter = %d, %v; want 7, true", v, ok)
	}
}

func TestEventRingOverwritesOldest(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < DefaultEventCapacity+10; i++ {
		r.RecordEvent("e", "i", string(rune('a'+i%26)))
	}
	evs := r.Events()
	if len(evs) != DefaultEventCapacity {
		t.Fatalf("retained %d events, want %d", len(evs), DefaultEventCapacity)
	}
	// Oldest-first: the first retained event is number 10 (0-based),
	// i.e. i%26 == 10 → 'k'.
	if evs[0].Attrs["i"] != "k" {
		t.Errorf("oldest retained event attr = %q, want %q", evs[0].Attrs["i"], "k")
	}
}

func TestSpanRecordsHistogramAndEvent(t *testing.T) {
	r := NewRegistry()
	span := r.StartSpan("op")
	d := span.End("result", "ok")
	if d < 0 {
		t.Errorf("span duration = %v", d)
	}
	if got := r.Histogram("op_seconds", nil).Count(); got != 1 {
		t.Errorf("span histogram count = %d, want 1", got)
	}
	evs := r.Events()
	if len(evs) != 1 || evs[0].Name != "op" || evs[0].Attrs["result"] != "ok" {
		t.Errorf("span events = %+v", evs)
	}
}
