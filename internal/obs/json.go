package obs

import (
	"encoding/json"
	"io"
)

// Snapshot is a point-in-time structured view of a registry — the JSON
// exposition and the programmatic read API.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
	Events     []Event          `json:"events,omitempty"`
}

// CounterValue is one counter series.
type CounterValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeValue is one gauge series.
type GaugeValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramValue is one histogram series with cumulative bucket counts.
type HistogramValue struct {
	Name       string            `json:"name"`
	Labels     map[string]string `json:"labels,omitempty"`
	Bounds     []float64         `json:"bounds"`
	Cumulative []int64           `json:"cumulative"`
	Count      int64             `json:"count"`
	Sum        float64           `json:"sum"`
}

// Snapshot captures every registered series and retained event. Ordering
// matches the Prometheus exposition (name, then label signature). A nil
// registry yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			labels := labelMap(s.labels)
			switch f.kind {
			case kindCounter:
				snap.Counters = append(snap.Counters, CounterValue{
					Name: f.name, Labels: labels, Value: s.c.Value(),
				})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, GaugeValue{
					Name: f.name, Labels: labels, Value: s.g.Value(),
				})
			default:
				bounds, cumulative := s.h.Buckets()
				snap.Histograms = append(snap.Histograms, HistogramValue{
					Name: f.name, Labels: labels,
					Bounds: bounds, Cumulative: cumulative,
					Count: s.h.Count(), Sum: s.h.Sum(),
				})
			}
		}
	}
	snap.Events = r.Events()
	return snap
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Counter returns the named counter's value from the snapshot, matching
// every given label pair; ok is false when no series matches.
func (s Snapshot) Counter(name string, labels ...string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name && labelsMatch(c.Labels, labels) {
			return c.Value, true
		}
	}
	return 0, false
}

// labelMap converts canonical alternating pairs into a map.
func labelMap(canon []string) map[string]string {
	if len(canon) == 0 {
		return nil
	}
	m := make(map[string]string, len(canon)/2)
	for i := 0; i+1 < len(canon); i += 2 {
		m[canon[i]] = canon[i+1]
	}
	return m
}

// labelsMatch reports whether m contains every pair of want.
func labelsMatch(m map[string]string, want []string) bool {
	for i := 0; i+1 < len(want); i += 2 {
		if m[want[i]] != want[i+1] {
			return false
		}
	}
	return true
}
