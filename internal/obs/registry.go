package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates the exposition type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	kind   metricKind
	help   string
	bounds []float64          // histogram families only
	series map[string]*series // keyed by canonical label signature
}

// series is one (name, labels) time series.
type series struct {
	labels []string // alternating key, value — sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a set of named metric families. All registration methods
// are safe for concurrent use; handing out the same (name, labels) twice
// returns the same metric, so call sites may re-resolve freely. A nil
// *Registry hands out nil metrics, which are themselves no-ops — code can
// be instrumented unconditionally and configured with nil to disable.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	helps    map[string]string
	events   eventRing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		helps:    make(map[string]string),
	}
}

// Counter returns the counter named name with the given label pairs
// (alternating key, value), registering it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, kindCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge named name with the given label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, kindGauge, nil, labels)
	return s.g
}

// Histogram returns the histogram named name over the given upper bounds
// (nil uses DefBuckets). Bounds are fixed by the first registration of the
// family; later calls may pass nil to reuse them.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, kindHistogram, bounds, labels)
	return s.h
}

// Timer returns a timer over the histogram named name (nil bounds uses
// DefBuckets).
func (r *Registry) Timer(name string, bounds []float64, labels ...string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name, bounds, labels...)}
}

// Help attaches help text to a metric name (before or after its first
// registration); it renders as the Prometheus # HELP line.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helps[name] = help
}

// lookup finds or registers the series for (name, labels).
func (r *Registry) lookup(name string, kind metricKind, bounds []float64, labels []string) *series {
	if err := validateName(name); err != nil {
		panic(err)
	}
	canon, err := canonicalLabels(labels)
	if err != nil {
		panic(fmt.Sprintf("obs: metric %s: %v", name, err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		if kind == kindHistogram {
			if bounds == nil {
				bounds = DefBuckets
			}
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, requested %s", name, f.kind, kind))
	}
	sig := signature(canon)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: canon}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.series[sig] = s
	}
	return s
}

// sortedFamilies returns the families in name order and each family's
// series in label-signature order — the deterministic walk both
// expositions share.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		if help, ok := r.helps[f.name]; ok {
			f.help = help
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedSeries returns one family's series in label order.
func (f *family) sortedSeries() []*series {
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]*series, len(sigs))
	for i, sig := range sigs {
		out[i] = f.series[sig]
	}
	return out
}

// validateName enforces the Prometheus metric-name charset.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, ch := range name {
		alpha := ch == '_' || ch == ':' ||
			(ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
		if alpha || (i > 0 && ch >= '0' && ch <= '9') {
			continue
		}
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	return nil
}

// canonicalLabels validates alternating key/value pairs and returns them
// sorted by key so label order never splits a series.
func canonicalLabels(labels []string) ([]string, error) {
	if len(labels) == 0 {
		return nil, nil
	}
	if len(labels)%2 != 0 {
		return nil, fmt.Errorf("odd label list %q", labels)
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if err := validateName(labels[i]); err != nil {
			return nil, fmt.Errorf("label key %q invalid", labels[i])
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := make([]string, 0, len(labels))
	for _, p := range pairs {
		out = append(out, p.k, p.v)
	}
	return out, nil
}

// signature flattens canonical labels into a map key.
func signature(canon []string) string {
	if len(canon) == 0 {
		return ""
	}
	return strings.Join(canon, "\x00")
}
