package obs

import (
	"bytes"
	"net/http"
)

// Handler serves the registry over HTTP: Prometheus text format by
// default, the JSON snapshot with ?format=json. Wire it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if req.URL.Query().Get("format") == "json" {
			if err := r.WriteJSON(&buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
		} else {
			if err := r.WritePrometheus(&buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		_, _ = w.Write(buf.Bytes())
	})
}
