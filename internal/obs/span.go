package obs

import (
	"sync"
	"time"
)

// maxEvents bounds the in-memory event ring; older events are overwritten.
const maxEvents = 256

// Event is one timestamped occurrence — a training run starting, a
// threshold moving, a simulation session completing. Events complement
// metrics: metrics aggregate, events narrate.
type Event struct {
	// Name identifies the kind of occurrence.
	Name string `json:"name"`
	// At is the wall-clock time the event was recorded.
	At time.Time `json:"at"`
	// Attrs are free-form key/value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// eventRing is a fixed-capacity overwrite-oldest buffer.
type eventRing struct {
	mu    sync.Mutex
	buf   [maxEvents]Event
	next  int
	total int
}

func (e *eventRing) add(ev Event) {
	e.mu.Lock()
	e.buf[e.next] = ev
	e.next = (e.next + 1) % maxEvents
	e.total++
	e.mu.Unlock()
}

// snapshot returns the retained events oldest-first.
func (e *eventRing) snapshot() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := e.total
	if n > maxEvents {
		n = maxEvents
	}
	out := make([]Event, 0, n)
	start := 0
	if e.total > maxEvents {
		start = e.next
	}
	for i := 0; i < n; i++ {
		out = append(out, e.buf[(start+i)%maxEvents])
	}
	return out
}

// RecordEvent appends an event with alternating key/value attributes to
// the registry's bounded ring. A nil registry drops it.
func (r *Registry) RecordEvent(name string, attrs ...string) {
	if r == nil {
		return
	}
	ev := Event{Name: name, At: time.Now()} //lint:ignore nondeterminism event timestamps are observability data, not model state
	if len(attrs) >= 2 {
		ev.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			ev.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	r.events.add(ev)
}

// Events returns the retained events, oldest first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events.snapshot()
}

// Span is one in-flight timed operation. Ending a span records its
// duration into the histogram <name>_seconds and appends a completion
// event. A zero Span (from a nil registry) is inert.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan begins a timed operation.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()} //lint:ignore nondeterminism spans measure wall-clock latency by design
}

// End records the span's duration and returns it.
func (s Span) End(attrs ...string) time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.start) //lint:ignore nondeterminism spans measure wall-clock latency by design
	s.r.Histogram(s.name+"_seconds", DefBuckets).Observe(d.Seconds())
	s.r.RecordEvent(s.name, attrs...)
	return d
}
