package obs

import (
	"sync"
	"time"
)

// DefaultEventCapacity bounds the in-memory event ring until
// Registry.SetEventCapacity resizes it; older events are overwritten.
const DefaultEventCapacity = 256

// Event is one timestamped occurrence — a training run starting, a
// threshold moving, a simulation session completing. Events complement
// metrics: metrics aggregate, events narrate.
type Event struct {
	// Name identifies the kind of occurrence.
	Name string `json:"name"`
	// At is the wall-clock time the event was recorded.
	At time.Time `json:"at"`
	// Attrs are free-form key/value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// eventRing is a bounded overwrite-oldest buffer. The buffer is allocated
// lazily at first use so a capacity change before any event costs nothing.
type eventRing struct {
	mu       sync.Mutex
	cap      int // 0 means DefaultEventCapacity at next use
	buf      []Event
	next     int
	retained int // events currently in buf
	total    int // lifetime events recorded
}

// capacity returns the configured capacity, defaulting lazily.
func (e *eventRing) capacity() int {
	if e.cap <= 0 {
		return DefaultEventCapacity
	}
	return e.cap
}

// setCapacity resizes the ring, retaining up to n of the newest events
// (oldest discarded when shrinking). Callers must not hold e.mu.
func (e *eventRing) setCapacity(n int) {
	if n <= 0 {
		n = DefaultEventCapacity
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	kept := e.snapshotLocked()
	if len(kept) > n {
		kept = kept[len(kept)-n:]
	}
	e.cap = n
	e.buf = make([]Event, n)
	copy(e.buf, kept)
	e.next = len(kept) % n
	e.retained = len(kept)
}

func (e *eventRing) add(ev Event) {
	e.mu.Lock()
	if e.buf == nil {
		e.buf = make([]Event, e.capacity())
	}
	e.buf[e.next] = ev
	e.next = (e.next + 1) % len(e.buf)
	if e.retained < len(e.buf) {
		e.retained++
	}
	e.total++
	e.mu.Unlock()
}

// snapshot returns the retained events oldest-first.
func (e *eventRing) snapshot() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

// snapshotLocked is snapshot with e.mu already held.
func (e *eventRing) snapshotLocked() []Event {
	if e.buf == nil || e.retained == 0 {
		return nil
	}
	out := make([]Event, 0, e.retained)
	start := e.next - e.retained
	if start < 0 {
		start += len(e.buf)
	}
	for i := 0; i < e.retained; i++ {
		out = append(out, e.buf[(start+i)%len(e.buf)])
	}
	return out
}

// RecordEvent appends an event with alternating key/value attributes to
// the registry's bounded ring. A nil registry drops it.
func (r *Registry) RecordEvent(name string, attrs ...string) {
	if r == nil {
		return
	}
	ev := Event{Name: name, At: time.Now()} //lint:ignore nondeterminism event timestamps are observability data, not model state
	if len(attrs) >= 2 {
		ev.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			ev.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	r.events.add(ev)
}

// Events returns the retained events, oldest first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events.snapshot()
}

// SetEventCapacity resizes the event ring to retain up to n events
// (n <= 0 restores DefaultEventCapacity). Shrinking discards the oldest
// retained events; the lifetime total is unaffected.
func (r *Registry) SetEventCapacity(n int) {
	if r == nil {
		return
	}
	r.events.setCapacity(n)
}

// EventsRecorded returns the lifetime count of recorded events, including
// those the ring has since overwritten.
func (r *Registry) EventsRecorded() int {
	if r == nil {
		return 0
	}
	r.events.mu.Lock()
	defer r.events.mu.Unlock()
	return r.events.total
}

// Span is one in-flight timed operation. Ending a span records its
// duration into the histogram <name>_seconds and appends a completion
// event. A zero Span (from a nil registry) is inert.
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan begins a timed operation.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()} //lint:ignore nondeterminism spans measure wall-clock latency by design
}

// End records the span's duration and returns it.
func (s Span) End(attrs ...string) time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.start) //lint:ignore nondeterminism spans measure wall-clock latency by design
	s.r.Histogram(s.name+"_seconds", DefBuckets).Observe(d.Seconds())
	s.r.RecordEvent(s.name, attrs...)
	return d
}
