package resilience

import (
	"sync"
	"time"
)

// breakerState is the circuit breaker's position.
type breakerState uint8

const (
	// breakerClosed passes traffic and counts consecutive failures.
	breakerClosed breakerState = iota
	// breakerOpen fails requests fast until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen lets exactly one probe through; its outcome decides
	// between closing and re-opening.
	breakerHalfOpen
)

// breaker is a per-endpoint circuit breaker over transport failures.
// Explicit server rejects are not failures — a server answering "overloaded"
// is alive and the protocol is healthy; the breaker exists for the case
// where the endpoint stops answering at all, so that a fleet of callers
// does not pile retries onto a dead or resetting peer.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
	opens    uint64
}

// allow reports whether a request may proceed now. In the open state it
// flips to half-open once the cooldown has elapsed and grants a single
// probe; concurrent callers fail fast until the probe resolves.
func (b *breaker) allow(now time.Time) bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed exchange: any state collapses to closed.
func (b *breaker) success() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a transport failure and reports whether the breaker
// opened on it. A half-open probe failure re-opens immediately; in the
// closed state the consecutive-failure count must reach the threshold.
func (b *breaker) failure(now time.Time) (opened bool) {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.opens++
		return true
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens++
			return true
		}
	}
	return false
}

// openCount returns the number of times the breaker has opened.
func (b *breaker) openCount() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
