// Package resilience is the hardened binary-protocol client: per-request
// deadlines carried in the frame header, retries with capped exponential
// backoff and decorrelated jitter, a per-endpoint circuit breaker, and
// reconnect-on-reset. Its contract is the client half of the chaos
// invariant: every request handed to Do ends in exactly one of a decoded
// response or a typed error — never a silent loss, never a hang beyond
// the request deadline.
package resilience

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cqm/internal/obs"
	"cqm/internal/particle"
	"cqm/internal/serve"
)

// Metric names of the resilient client.
const (
	// MetricAttempts counts wire attempts, by outcome (ok | error).
	MetricAttempts = "cqm_resilience_attempts_total"
	// MetricRetries counts retry sleeps taken.
	MetricRetries = "cqm_resilience_retries_total"
	// MetricBreaker counts breaker transitions and fast-fails, by event.
	MetricBreaker = "cqm_resilience_breaker_total"
	// MetricDials counts fresh connections established.
	MetricDials = "cqm_resilience_dials_total"
)

// Typed terminal errors of Do. Transport-level causes are wrapped, so
// errors.Is works on both the category and the cause.
var (
	// ErrBreakerOpen fails a request fast while the endpoint's circuit
	// breaker is open (or a half-open probe is already in flight).
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrDeadline reports a request whose deadline budget was exhausted
	// before a response arrived.
	ErrDeadline = errors.New("resilience: request deadline exhausted")
	// ErrExhausted reports a request that failed every allowed attempt.
	ErrExhausted = errors.New("resilience: attempts exhausted")
	// errStaleResponse reports a response frame whose node/seq does not
	// match the in-flight request (a desynchronized connection).
	errStaleResponse = errors.New("resilience: response does not match request")
)

// Config parameterizes a Client. Zero values select the documented
// defaults.
type Config struct {
	// Addr is the server's binary-protocol TCP address.
	Addr string
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// RequestTimeout is the per-request deadline: the whole retry loop —
	// dials, sends, backoff sleeps, reads — must fit inside it. The
	// remaining budget is carried to the server in the frame header so it
	// can reject rather than score an expired request (default 5s).
	RequestTimeout time.Duration
	// MaxRetries is the number of re-attempts after the first (default 3,
	// so 4 attempts; negative = no retries).
	MaxRetries int
	// BackoffBase and BackoffCap bound the decorrelated-jitter backoff
	// (defaults 25ms and 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold opens the breaker after this many consecutive
	// transport failures (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before allowing
	// one half-open probe (default 1s).
	BreakerCooldown time.Duration
	// Seed roots the jitter RNG, making backoff sequences reproducible in
	// tests.
	Seed int64
	// Metrics optionally registers the client's counters.
	Metrics *obs.Registry
}

// withDefaults fills the documented defaults.
func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// Stats is a snapshot of the client's counters.
type Stats struct {
	// Requests is the number of Do calls; Responses of them ended in a
	// decoded response (including explicit rejects).
	Requests  uint64
	Responses uint64
	// DeadlineErrors, BreakerFastFails, and Exhausted partition the typed
	// errors: Requests == Responses + DeadlineErrors + BreakerFastFails +
	// Exhausted once no calls are in flight.
	DeadlineErrors   uint64
	BreakerFastFails uint64
	Exhausted        uint64
	// Attempts counts wire attempts; TransportErrors of them failed.
	Attempts        uint64
	TransportErrors uint64
	// Retries counts backoff sleeps taken; Dials fresh connections;
	// BreakerOpens closed→open (or half-open→open) transitions.
	Retries      uint64
	Dials        uint64
	BreakerOpens uint64
}

// Client is a resilient binary-protocol client. Do may be called from any
// number of goroutines; each in-flight request holds one pooled connection
// exclusively, so concurrency equals connections.
type Client struct {
	cfg     Config
	breaker breaker

	mu   sync.Mutex
	idle []*wire
	rng  *rand.Rand
	prev time.Duration

	requests  atomic.Uint64
	responses atomic.Uint64
	deadline  atomic.Uint64
	fastfail  atomic.Uint64
	exhausted atomic.Uint64
	attempts  atomic.Uint64
	terrs     atomic.Uint64
	retries   atomic.Uint64
	dials     atomic.Uint64

	met clientMetrics
}

// clientMetrics holds the optional pre-resolved counters.
type clientMetrics struct {
	attemptOK  *obs.Counter
	attemptErr *obs.Counter
	retries    *obs.Counter
	opens      *obs.Counter
	fastfails  *obs.Counter
	dials      *obs.Counter
}

// wire is one pooled connection.
type wire struct {
	conn net.Conn
}

// New builds a client for cfg.Addr. No connection is made until the first
// Do.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	cl := &Client{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		breaker: breaker{
			threshold: cfg.BreakerThreshold,
			cooldown:  cfg.BreakerCooldown,
		},
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Help(MetricAttempts, "Resilient client wire attempts, by outcome.")
		reg.Help(MetricRetries, "Resilient client retry sleeps taken.")
		reg.Help(MetricBreaker, "Resilient client breaker events.")
		reg.Help(MetricDials, "Resilient client connections established.")
		cl.met = clientMetrics{
			attemptOK:  reg.Counter(MetricAttempts, "outcome", "ok"),
			attemptErr: reg.Counter(MetricAttempts, "outcome", "error"),
			retries:    reg.Counter(MetricRetries),
			opens:      reg.Counter(MetricBreaker, "event", "open"),
			fastfails:  reg.Counter(MetricBreaker, "event", "fastfail"),
			dials:      reg.Counter(MetricDials),
		}
	}
	return cl
}

// Stats snapshots the counters.
func (cl *Client) Stats() Stats {
	return Stats{
		Requests:         cl.requests.Load(),
		Responses:        cl.responses.Load(),
		DeadlineErrors:   cl.deadline.Load(),
		BreakerFastFails: cl.fastfail.Load(),
		Exhausted:        cl.exhausted.Load(),
		Attempts:         cl.attempts.Load(),
		TransportErrors:  cl.terrs.Load(),
		Retries:          cl.retries.Load(),
		Dials:            cl.dials.Load(),
		BreakerOpens:     cl.breaker.openCount(),
	}
}

// Close drops every pooled connection. In-flight requests finish on their
// own connections.
func (cl *Client) Close() {
	cl.mu.Lock()
	idle := cl.idle
	cl.idle = nil
	cl.mu.Unlock()
	for _, w := range idle {
		_ = w.conn.Close()
	}
}

// Do executes one scoring request. It returns either a decoded response
// (scored outcome or explicit server reject) or a typed error —
// ErrBreakerOpen, ErrDeadline, or ErrExhausted wrapping the last transport
// cause. It never returns a silent zero value and never blocks past the
// request deadline plus one dial timeout.
func (cl *Client) Do(req serve.Request) (serve.Response, error) {
	cl.requests.Add(1)
	deadline := time.Now().Add(cl.cfg.RequestTimeout) //lint:ignore nondeterminism request deadlines are wall-clock by definition
	var lastErr error
	for attempt := 0; ; attempt++ {
		budget := time.Until(deadline) //lint:ignore nondeterminism request deadlines are wall-clock by definition
		if budget <= 0 {
			cl.deadline.Add(1)
			if lastErr != nil {
				return serve.Response{}, fmt.Errorf("%w (last attempt: %v)", ErrDeadline, lastErr)
			}
			return serve.Response{}, ErrDeadline
		}
		if !cl.breaker.allow(time.Now()) { //lint:ignore nondeterminism breaker cooldowns track real elapsed time
			cl.fastfail.Add(1)
			cl.met.fastfails.Inc()
			return serve.Response{}, ErrBreakerOpen
		}
		resp, err := cl.attempt(req, deadline, budget)
		cl.attempts.Add(1)
		if err == nil {
			cl.met.attemptOK.Inc()
			cl.breaker.success()
			if cl.retryableReject(resp, attempt, deadline) {
				continue
			}
			cl.responses.Add(1)
			return resp, nil
		}
		cl.terrs.Add(1)
		cl.met.attemptErr.Inc()
		if cl.breaker.failure(time.Now()) { //lint:ignore nondeterminism breaker cooldowns track real elapsed time
			cl.met.opens.Inc()
		}
		lastErr = err
		if attempt >= cl.cfg.MaxRetries {
			cl.exhausted.Add(1)
			return serve.Response{}, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, attempt+1, err)
		}
		cl.sleepBackoff(deadline)
	}
}

// retryableReject reports whether a decoded reject is worth a backoff and
// retry: overload and shed rejects are transient by definition, everything
// else (draining, protocol, deadline, internal, unavailable) is handed to
// the caller as the request's answer. A retry is only taken while budget
// and attempts remain.
func (cl *Client) retryableReject(resp serve.Response, attempt int, deadline time.Time) bool {
	if !resp.Rejected {
		return false
	}
	if resp.Reject != serve.RejectOverloaded && resp.Reject != serve.RejectShed {
		return false
	}
	if attempt >= cl.cfg.MaxRetries || time.Until(deadline) <= 0 { //lint:ignore nondeterminism request deadlines are wall-clock by definition
		return false
	}
	cl.sleepBackoff(deadline)
	return true
}

// sleepBackoff sleeps the next decorrelated-jitter interval, clipped so it
// never sleeps past the request deadline.
func (cl *Client) sleepBackoff(deadline time.Time) {
	cl.mu.Lock()
	base, cap := cl.cfg.BackoffBase, cl.cfg.BackoffCap
	span := 3*cl.prev - base
	if span < 0 {
		span = 0
	}
	d := base + time.Duration(cl.rng.Float64()*float64(span))
	if d > cap {
		d = cap
	}
	cl.prev = d
	cl.mu.Unlock()
	if until := time.Until(deadline); d > until { //lint:ignore nondeterminism backoff is clipped to the wall-clock deadline
		d = until
	}
	cl.retries.Add(1)
	cl.met.retries.Inc()
	if d > 0 {
		time.Sleep(d)
	}
}

// attempt runs one wire exchange: take or dial a connection, send the
// request with its remaining budget in the header, read one response
// frame, and match it to the request. Any error closes the connection (a
// failed connection may hold stale response bytes, so it never returns to
// the pool).
func (cl *Client) attempt(req serve.Request, deadline time.Time, budget time.Duration) (serve.Response, error) {
	req.DeadlineMillis = budgetMillis(budget)
	frame, err := serve.EncodeRequest(req)
	if err != nil {
		return serve.Response{}, err
	}
	w, err := cl.take(deadline)
	if err != nil {
		return serve.Response{}, err
	}
	resp, err := w.exchange(req, frame, deadline)
	if err != nil {
		_ = w.conn.Close()
		return serve.Response{}, err
	}
	cl.put(w)
	return resp, nil
}

// budgetMillis converts the remaining budget to the wire's millisecond
// field, rounding up so a sub-millisecond remainder is not sent as the
// reserved 0 ("no deadline").
func budgetMillis(budget time.Duration) uint32 {
	ms := (budget + time.Millisecond - 1) / time.Millisecond
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// exchange writes one frame and reads the matching response.
func (w *wire) exchange(req serve.Request, frame []byte, deadline time.Time) (serve.Response, error) {
	if err := w.conn.SetWriteDeadline(deadline); err != nil {
		return serve.Response{}, err
	}
	if _, err := w.conn.Write(frame); err != nil {
		return serve.Response{}, err
	}
	if err := w.conn.SetReadDeadline(deadline); err != nil {
		return serve.Response{}, err
	}
	var buf [particle.FrameLen]byte
	if _, err := io.ReadFull(w.conn, buf[:]); err != nil {
		return serve.Response{}, err
	}
	resp, err := serve.DecodeResponse(buf[:])
	if err != nil {
		return serve.Response{}, err
	}
	if resp.Node != req.Node || resp.Seq != req.Seq {
		return serve.Response{}, errStaleResponse
	}
	return resp, nil
}

// take pops a pooled connection or dials a fresh one, bounding the dial by
// both DialTimeout and the request deadline.
func (cl *Client) take(deadline time.Time) (*wire, error) {
	cl.mu.Lock()
	if n := len(cl.idle); n > 0 {
		w := cl.idle[n-1]
		cl.idle = cl.idle[:n-1]
		cl.mu.Unlock()
		return w, nil
	}
	cl.mu.Unlock()
	timeout := cl.cfg.DialTimeout
	if until := time.Until(deadline); until < timeout { //lint:ignore nondeterminism dial timeout is clipped to the wall-clock deadline
		timeout = until
	}
	conn, err := net.DialTimeout("tcp", cl.cfg.Addr, timeout)
	if err != nil {
		return nil, err
	}
	cl.dials.Add(1)
	cl.met.dials.Inc()
	return &wire{conn: conn}, nil
}

// put returns a healthy connection to the pool.
func (cl *Client) put(w *wire) {
	cl.mu.Lock()
	cl.idle = append(cl.idle, w)
	cl.mu.Unlock()
}
