package resilience

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cqm/internal/chaos"
	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/fuzzy"
	"cqm/internal/particle"
	"cqm/internal/serve"
)

// chaosTestProfile is hostile enough that every failure mode fires within
// a few hundred requests while most requests still finish.
func chaosTestProfile(seed int64) chaos.Config {
	return chaos.Config{
		Seed:          seed,
		ResetProb:     0.05,
		BlackholeRate: 0.1,
		TruncateProb:  0.02,
		CorruptProb:   0.02,
		DribbleProb:   0.05,
		DelayProb:     0.2,
		DelayBase:     time.Millisecond,
		DelayMax:      10 * time.Millisecond,
		DribbleDelay:  500 * time.Microsecond,
		IdleTimeout:   300 * time.Millisecond,
		Record:        true,
	}
}

// constMeasure builds a constant-q model (no training pass needed).
func constMeasure(t *testing.T, bias float64) *core.Measure {
	t.Helper()
	sys, err := fuzzy.NewTSK(2, []fuzzy.Rule{{
		Antecedent: []fuzzy.Gaussian{{Mu: 0.5, Sigma: 10}, {Mu: 0, Sigma: 10}},
		Coeffs:     []float64{0, 0, bias},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return core.MeasureFromSystem(sys)
}

// chaosScenario is one full-stack run: hardened server, chaos proxy,
// resilient client fleet, fixed request count.
type chaosScenario struct {
	seed     int64
	shards   int
	workers  int
	perWork  int
	panicky  bool
	requests uint64

	responses uint64
	deadline  uint64
	open      uint64
	exhausted uint64

	server    serve.Stats
	schedules map[int64][]chaos.Decision
	counts    [7]uint64
}

// run executes the scenario and checks both halves of the chaos invariant:
// the client half (every request ends in a response or typed error) and
// the server half (every admitted frame is scored or explicitly rejected).
func (sc *chaosScenario) run(t *testing.T) {
	t.Helper()
	cfg := serve.Config{
		Shards:      sc.shards,
		Threshold:   0.5,
		Handle:      ckpt.NewHandle(constMeasure(t, 0.75)),
		ShedTarget:  10 * time.Millisecond,
		IdleTimeout: 500 * time.Millisecond,
	}
	if sc.panicky {
		var batches atomic.Uint64
		cfg.BatchObserver = func(m *core.Measure, outs []serve.Outcome) {
			if batches.Add(1)%5 == 0 {
				panic("chaos: injected shard panic")
			}
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeBinary(ln) }()

	proxy, err := chaos.New(chaosTestProfile(sc.seed), ln.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}

	clients := make([]*Client, 4)
	for i := range clients {
		clients[i] = New(Config{
			Addr:             proxy.Addr(),
			Seed:             sc.seed + int64(i),
			RequestTimeout:   500 * time.Millisecond,
			MaxRetries:       3,
			BackoffBase:      2 * time.Millisecond,
			BackoffCap:       50 * time.Millisecond,
			BreakerThreshold: 6,
			BreakerCooldown:  50 * time.Millisecond,
		})
	}

	var responses, deadline, open, exhausted atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < sc.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w%len(clients)]
			for i := 0; i < sc.perWork; i++ {
				req := serve.Request{
					Node:    particle.NodeIDFromString("pen"),
					Seq:     uint16(w*sc.perWork + i),
					ClassID: 1,
					Cues:    []float64{0.5},
				}
				_, err := cl.Do(req)
				switch {
				case err == nil:
					responses.Add(1)
				case errors.Is(err, ErrBreakerOpen):
					open.Add(1)
				case isDeadline(err):
					deadline.Add(1)
				case isExhausted(err):
					exhausted.Add(1)
				default:
					t.Errorf("worker %d request %d: untyped error %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()

	for _, cl := range clients {
		cl.Close()
	}
	_ = proxy.Close()
	_ = ln.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("ServeBinary: %v", err)
	}
	srv.Drain()

	sc.requests = uint64(sc.workers * sc.perWork)
	sc.responses = responses.Load()
	sc.deadline = deadline.Load()
	sc.open = open.Load()
	sc.exhausted = exhausted.Load()
	sc.server = srv.Stats()
	sc.schedules = proxy.Schedules()
	sc.counts = proxy.Counts()

	// Client half of the invariant: exact conservation of requests.
	if got := sc.responses + sc.deadline + sc.open + sc.exhausted; got != sc.requests {
		t.Fatalf("client conservation violated: %d requests, %d terminal outcomes", sc.requests, got)
	}
	var agg Stats
	for _, cl := range clients {
		st := cl.Stats()
		agg.Requests += st.Requests
		agg.Responses += st.Responses
		agg.DeadlineErrors += st.DeadlineErrors
		agg.BreakerFastFails += st.BreakerFastFails
		agg.Exhausted += st.Exhausted
	}
	if got := agg.Responses + agg.DeadlineErrors + agg.BreakerFastFails + agg.Exhausted; got != agg.Requests {
		t.Fatalf("client stats conservation violated: %+v", agg)
	}

	// Server half: nothing admitted went unanswered, across deadline
	// rejections, shedding, and injected shard panics.
	if got := sc.server.Scored() + sc.server.AdmittedRejects(); got != sc.server.Admitted {
		t.Fatalf("server drain invariant violated: admitted %d, answered %d (stats %+v)",
			sc.server.Admitted, got, sc.server)
	}

	// Schedule determinism: every recorded per-stream schedule must be
	// exactly a prefix of the pure decider stream for that (seed, stream)
	// — bit-identical replay from the seed alone.
	profile := chaosTestProfile(sc.seed)
	for stream, got := range sc.schedules {
		ref := chaos.NewDecider(profile, stream)
		for i, dec := range got {
			if want := ref.Next(); dec != want {
				t.Fatalf("stream %d decision %d = %+v, want %+v", stream, i, dec, want)
			}
		}
	}
}

func isDeadline(err error) bool  { return errors.Is(err, ErrDeadline) }
func isExhausted(err error) bool { return errors.Is(err, ErrExhausted) }

func TestChaosInvariantSingleShard(t *testing.T) {
	sc := &chaosScenario{seed: 42, shards: 1, workers: 8, perWork: 60, panicky: true}
	sc.run(t)
	assertChaosFired(t, sc)
	if sc.server.ShardRestarts == 0 {
		t.Error("panic injection never restarted a shard")
	}
}

func TestChaosInvariantFourShards(t *testing.T) {
	sc := &chaosScenario{seed: 42, shards: 4, workers: 8, perWork: 60, panicky: true}
	sc.run(t)
	assertChaosFired(t, sc)
}

// assertChaosFired checks the run actually exercised the failure modes the
// invariant claims to survive.
func assertChaosFired(t *testing.T, sc *chaosScenario) {
	t.Helper()
	for _, k := range []chaos.Kind{chaos.Reset, chaos.Blackhole, chaos.Dribble, chaos.Delay} {
		if sc.counts[k] == 0 {
			t.Errorf("chaos kind %s never fired: %v", k, sc.counts)
		}
	}
	if sc.responses == 0 {
		t.Error("no request survived chaos — the profile is too hostile to prove resilience")
	}
}
