package resilience

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cqm/internal/obs"
	"cqm/internal/particle"
	"cqm/internal/serve"
)

// fakeServer speaks just enough of the binary protocol to script client
// behavior: for the n-th request overall it answers script(n, req), or
// closes the connection without answering when ok is false.
func fakeServer(t *testing.T, script func(n int, req serve.Request) (resp serve.Response, ok bool)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	var count atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer func() { _ = conn.Close() }()
				r := bufio.NewReader(conn)
				for {
					req, err := serve.ReadRequest(r)
					if err != nil {
						return
					}
					n := int(count.Add(1) - 1)
					resp, ok := script(n, req)
					if !ok {
						return
					}
					resp.Node, resp.Seq, resp.SentMillis = req.Node, req.Seq, req.SentMillis
					frame, err := serve.EncodeResponse(resp)
					if err != nil {
						return
					}
					if _, err := conn.Write(frame); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// testRequest is a minimal valid request.
func testRequest(seq uint16) serve.Request {
	return serve.Request{
		Node: particle.NodeIDFromString("bench"),
		Seq:  seq,
		Cues: []float64{0.5, 0.25},
	}
}

// accepted is the canonical happy-path answer.
func accepted() (serve.Response, bool) {
	return serve.Response{Status: serve.StatusAccepted, Q: 0.75}, true
}

func TestDoSuccessAndPoolReuse(t *testing.T) {
	addr := fakeServer(t, func(n int, req serve.Request) (serve.Response, bool) {
		if req.DeadlineMillis == 0 {
			t.Error("request arrived without a deadline budget")
		}
		return accepted()
	})
	cl := New(Config{Addr: addr, Seed: 1, Metrics: obs.NewRegistry()})
	defer cl.Close()

	for seq := uint16(0); seq < 3; seq++ {
		resp, err := cl.Do(testRequest(seq))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Rejected || resp.Status != serve.StatusAccepted {
			t.Fatalf("unexpected response %+v", resp)
		}
		if resp.Seq != seq {
			t.Fatalf("response seq %d, want %d", resp.Seq, seq)
		}
	}
	st := cl.Stats()
	if st.Dials != 1 {
		t.Fatalf("serial requests dialed %d times, want pooled reuse (1)", st.Dials)
	}
	if st.Requests != 3 || st.Responses != 3 || st.Attempts != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetryAfterConnectionDrop(t *testing.T) {
	addr := fakeServer(t, func(n int, req serve.Request) (serve.Response, bool) {
		if n == 0 {
			return serve.Response{}, false // hang up without answering
		}
		return accepted()
	})
	cl := New(Config{Addr: addr, Seed: 2, BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond})
	defer cl.Close()

	resp, err := cl.Do(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != serve.StatusAccepted {
		t.Fatalf("response %+v", resp)
	}
	st := cl.Stats()
	if st.TransportErrors != 1 || st.Retries != 1 || st.Attempts != 2 || st.Dials != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRetryOnOverloadReject(t *testing.T) {
	addr := fakeServer(t, func(n int, req serve.Request) (serve.Response, bool) {
		switch n {
		case 0:
			return serve.Response{Rejected: true, Reject: serve.RejectOverloaded}, true
		case 1:
			return serve.Response{Rejected: true, Reject: serve.RejectShed}, true
		default:
			return accepted()
		}
	})
	cl := New(Config{Addr: addr, Seed: 3, BackoffBase: time.Millisecond, BackoffCap: 5 * time.Millisecond})
	defer cl.Close()

	resp, err := cl.Do(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rejected {
		t.Fatalf("overload rejects should have been retried away: %+v", resp)
	}
	st := cl.Stats()
	if st.Retries != 2 || st.TransportErrors != 0 || st.Dials != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTerminalRejectReturnedToCaller(t *testing.T) {
	addr := fakeServer(t, func(n int, req serve.Request) (serve.Response, bool) {
		return serve.Response{Rejected: true, Reject: serve.RejectDraining}, true
	})
	cl := New(Config{Addr: addr, Seed: 4})
	defer cl.Close()

	resp, err := cl.Do(testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Rejected || resp.Reject != serve.RejectDraining {
		t.Fatalf("response %+v, want draining reject", resp)
	}
	if st := cl.Stats(); st.Retries != 0 {
		t.Fatalf("terminal reject retried: %+v", st)
	}
}

func TestDeadlineExhausted(t *testing.T) {
	addr := fakeServer(t, func(n int, req serve.Request) (serve.Response, bool) {
		time.Sleep(5 * time.Second) // never answer within the budget
		return serve.Response{}, false
	})
	cl := New(Config{Addr: addr, Seed: 5, RequestTimeout: 150 * time.Millisecond, MaxRetries: 3})
	defer cl.Close()

	start := time.Now()
	_, err := cl.Do(testRequest(1))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bound request took %v", elapsed)
	}
	if st := cl.Stats(); st.DeadlineErrors != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestExhaustedAfterMaxRetries(t *testing.T) {
	addr := fakeServer(t, func(n int, req serve.Request) (serve.Response, bool) {
		return serve.Response{}, false // always hang up
	})
	cl := New(Config{
		Addr: addr, Seed: 6, MaxRetries: 2,
		BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		BreakerThreshold: -1,
	})
	defer cl.Close()

	_, err := cl.Do(testRequest(1))
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	st := cl.Stats()
	if st.Attempts != 3 || st.TransportErrors != 3 || st.Exhausted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBreakerFastFails(t *testing.T) {
	// Nothing listens on this address: every attempt is a dial failure.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	cl := New(Config{
		Addr: addr, Seed: 7, MaxRetries: -1,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
		BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
	})
	defer cl.Close()

	for i := 0; i < 2; i++ {
		if _, err := cl.Do(testRequest(1)); !errors.Is(err, ErrExhausted) {
			t.Fatalf("attempt %d: want ErrExhausted, got %v", i, err)
		}
	}
	if _, err := cl.Do(testRequest(1)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	st := cl.Stats()
	if st.BreakerOpens != 1 || st.BreakerFastFails != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The conservation law: every request ended in exactly one bucket.
	if st.Requests != st.Responses+st.DeadlineErrors+st.BreakerFastFails+st.Exhausted {
		t.Fatalf("request accounting violated: %+v", st)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := breaker{threshold: 2, cooldown: 50 * time.Millisecond}
	now := time.Unix(1000, 0)

	if !b.allow(now) {
		t.Fatal("closed breaker must allow")
	}
	if opened := b.failure(now); opened {
		t.Fatal("opened below threshold")
	}
	if opened := b.failure(now); !opened {
		t.Fatal("did not open at threshold")
	}
	if b.allow(now) {
		t.Fatal("open breaker allowed inside cooldown")
	}
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("cooldown elapsed but no probe granted")
	}
	if b.allow(later) {
		t.Fatal("second concurrent probe granted in half-open")
	}
	// Probe fails: straight back to open, counted.
	if opened := b.failure(later); !opened {
		t.Fatal("half-open probe failure did not re-open")
	}
	if b.openCount() != 2 {
		t.Fatalf("open count %d, want 2", b.openCount())
	}
	// Next cooldown, probe succeeds: closed again.
	again := later.Add(60 * time.Millisecond)
	if !b.allow(again) {
		t.Fatal("no probe after second cooldown")
	}
	b.success()
	if !b.allow(again) || !b.allow(again) {
		t.Fatal("closed breaker must allow freely after probe success")
	}

	off := breaker{threshold: -1}
	off.success()
	if off.failure(now) || !off.allow(now) {
		t.Fatal("disabled breaker must never interfere")
	}
}

func TestBudgetMillis(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want uint32
	}{
		{time.Nanosecond, 1},
		{time.Millisecond, 1},
		{time.Millisecond + 1, 2},
		{time.Second, 1000},
		{1 << 62, 1 << 31},
	}
	for _, c := range cases {
		if got := budgetMillis(c.in); got != c.want {
			t.Errorf("budgetMillis(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
