package fuzzy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPartitionRuspini(t *testing.T) {
	// Interior memberships of an even triangular partition sum to 1.
	v := NewPartition("activity", 0, 1, "low", "medium", "high")
	for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.77, 1} {
		var sum float64
		for _, d := range v.Fuzzify(x) {
			sum += d
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("memberships at %v sum to %v", x, sum)
		}
	}
}

func TestNewPartitionShoulders(t *testing.T) {
	v := NewPartition("q", 0, 1, "low", "high")
	// Below the range the first term saturates; above, the last.
	if d := v.Terms[0].MF.Eval(-0.2); d != 1 {
		t.Errorf("left shoulder below range = %v", d)
	}
	if d := v.Terms[1].MF.Eval(1.2); d != 1 {
		t.Errorf("right shoulder above range = %v", d)
	}
}

func TestBestTermAndDescribe(t *testing.T) {
	v := NewPartition("quality", 0, 1, "poor", "fair", "good")
	tests := []struct {
		x    float64
		want string
	}{
		{0.0, "poor"},
		{0.5, "fair"},
		{1.0, "good"},
		{0.9, "good"},
	}
	for _, tt := range tests {
		if got, _ := v.BestTerm(tt.x); got != tt.want {
			t.Errorf("BestTerm(%v) = %q, want %q", tt.x, got, tt.want)
		}
	}
	if s := v.Describe(0.95); !strings.Contains(s, "good") || !strings.Contains(s, "quality") {
		t.Errorf("Describe = %q", s)
	}
}

func TestNewPartitionPanics(t *testing.T) {
	cases := []func(){
		func() { NewPartition("x", 0, 1, "only") },
		func() { NewPartition("x", 1, 0, "a", "b") },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestVerbalizeRules(t *testing.T) {
	sys, err := NewTSK(2, []Rule{
		{
			Antecedent: []Gaussian{{Mu: 0.05, Sigma: 0.1}, {Mu: 0.9, Sigma: 0.1}},
			Coeffs:     []float64{1, -2, 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	vars := []*Variable{
		NewPartition("stddev", 0, 1, "low", "high"),
		NewPartition("energy", 0, 1, "low", "high"),
	}
	out, err := VerbalizeRules(sys, vars)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stddev is low") || !strings.Contains(out, "energy is high") {
		t.Errorf("verbalization = %q", out)
	}
	if !strings.Contains(out, "THEN") {
		t.Errorf("missing consequent: %q", out)
	}
	if _, err := VerbalizeRules(sys, vars[:1]); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestPartitionCoverageProperty(t *testing.T) {
	// Every in-range point belongs to some term with degree >= 0.5.
	f := func(rawX float64) bool {
		x := math.Mod(math.Abs(rawX), 1)
		v := NewPartition("p", 0, 1, "a", "b", "c", "d")
		_, deg := v.BestTerm(x)
		return deg >= 0.5-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
