package fuzzy

import "testing"

// TestEvalZeroAlloc guards the //cqm:hotpath contract on the scoring
// kernel: scalar-accumulating Eval must not allocate at all. EvalDetail
// deliberately trades this away for the trainer's per-rule trace.
func TestEvalZeroAlloc(t *testing.T) {
	sys := twoRuleSystem(t)
	v := []float64{0.5}
	if _, err := sys.Eval(v); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := sys.Eval(v); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Eval allocates %v per run, want 0", allocs)
	}
}
