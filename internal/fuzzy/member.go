package fuzzy

import (
	"fmt"
	"math"
)

// Membership is a membership function: it maps a crisp value to a degree of
// membership in [0, 1].
type Membership interface {
	// Eval returns the membership degree of x.
	Eval(x float64) float64
}

// Gaussian is the membership function the paper uses throughout:
// F(x) = exp(−(x−µ)² / (2σ²)). Sigma must be positive for a meaningful
// function; NewGaussian enforces this.
type Gaussian struct {
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

// NewGaussian returns a Gaussian membership function. It panics on
// non-positive sigma, which is a programming error: automated construction
// always derives sigma from positive cluster radii.
func NewGaussian(mu, sigma float64) Gaussian {
	if sigma <= 0 || math.IsNaN(sigma) {
		panic(fmt.Sprintf("fuzzy: Gaussian sigma must be positive, got %v", sigma))
	}
	return Gaussian{Mu: mu, Sigma: sigma}
}

// Eval returns exp(−(x−µ)²/(2σ²)).
func (g Gaussian) Eval(x float64) float64 {
	d := x - g.Mu
	return math.Exp(-d * d / (2 * g.Sigma * g.Sigma))
}

// GradMu returns ∂F/∂µ at x, used by the ANFIS backward pass.
func (g Gaussian) GradMu(x float64) float64 {
	d := x - g.Mu
	return g.Eval(x) * d / (g.Sigma * g.Sigma)
}

// GradSigma returns ∂F/∂σ at x, used by the ANFIS backward pass.
func (g Gaussian) GradSigma(x float64) float64 {
	d := x - g.Mu
	s := g.Sigma
	return g.Eval(x) * d * d / (s * s * s)
}

// Bell is the generalized bell membership function
// F(x) = 1 / (1 + |((x−c)/a)|^(2b)).
type Bell struct {
	A float64 `json:"a"` // width
	B float64 `json:"b"` // slope
	C float64 `json:"c"` // center
}

// Eval returns the bell membership degree of x.
func (b Bell) Eval(x float64) float64 {
	if b.A == 0 {
		if x == b.C { //lint:ignore floatcmp degenerate zero-width bell fires only at its stored center
			return 1
		}
		return 0
	}
	return 1 / (1 + math.Pow(math.Abs((x-b.C)/b.A), 2*b.B))
}

// Triangular is the triangle membership function with feet at Left/Right
// and peak at Peak.
type Triangular struct {
	Left  float64 `json:"left"`
	Peak  float64 `json:"peak"`
	Right float64 `json:"right"`
}

// Eval returns the triangular membership degree of x.
func (t Triangular) Eval(x float64) float64 {
	switch {
	case x <= t.Left || x >= t.Right:
		// Degenerate spikes still fire at the peak itself.
		if x == t.Peak { //lint:ignore floatcmp spike membership compares against the stored peak verbatim
			return 1
		}
		return 0
	case x == t.Peak: //lint:ignore floatcmp spike membership compares against the stored peak verbatim
		return 1
	case x < t.Peak:
		return (x - t.Left) / (t.Peak - t.Left)
	default:
		return (t.Right - x) / (t.Right - t.Peak)
	}
}

// Trapezoidal is the trapezoid membership function with support
// [A, D] and core [B, C].
type Trapezoidal struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
	C float64 `json:"c"`
	D float64 `json:"d"`
}

// Eval returns the trapezoidal membership degree of x.
func (t Trapezoidal) Eval(x float64) float64 {
	switch {
	case x < t.A || x > t.D:
		return 0
	case x >= t.B && x <= t.C:
		return 1
	case x < t.B:
		if t.B == t.A { //lint:ignore floatcmp equal stored feet mean a vertical shoulder; guards the division below
			return 1
		}
		return (x - t.A) / (t.B - t.A)
	default:
		if t.D == t.C { //lint:ignore floatcmp equal stored feet mean a vertical shoulder; guards the division below
			return 1
		}
		return (t.D - x) / (t.D - t.C)
	}
}

// Sigmoid is the sigmoidal membership function
// F(x) = 1 / (1 + exp(−A(x−C))).
type Sigmoid struct {
	A float64 `json:"a"` // slope; negative slopes open leftward
	C float64 `json:"c"` // inflection point
}

// Eval returns the sigmoid membership degree of x.
func (s Sigmoid) Eval(x float64) float64 {
	return 1 / (1 + math.Exp(-s.A*(x-s.C)))
}

// Compile-time interface checks.
var (
	_ Membership = Gaussian{}
	_ Membership = Bell{}
	_ Membership = Triangular{}
	_ Membership = Trapezoidal{}
	_ Membership = Sigmoid{}
)
