package fuzzy

import (
	"fmt"
	"strings"
)

// Term is a named fuzzy set over one variable ("low", "medium", "high").
type Term struct {
	Name string
	MF   Membership
}

// Variable is a linguistic variable: a name and its term partition. The
// paper verbalizes TSK rules linguistically ("IF F_1j(v_1) AND …"); a
// Variable gives those membership functions human-readable names for
// inspection and reporting.
type Variable struct {
	Name  string
	Terms []Term
}

// NewPartition builds a variable whose labels evenly partition [lo, hi]
// with triangular terms forming a Ruspini partition (memberships sum to 1
// everywhere inside the range). It panics on fewer than two labels or an
// empty range — programming errors.
func NewPartition(name string, lo, hi float64, labels ...string) *Variable {
	if len(labels) < 2 {
		panic(fmt.Sprintf("fuzzy: partition needs >= 2 labels, got %d", len(labels)))
	}
	if hi <= lo {
		panic(fmt.Sprintf("fuzzy: empty range [%v,%v]", lo, hi))
	}
	step := (hi - lo) / float64(len(labels)-1)
	v := &Variable{Name: name, Terms: make([]Term, len(labels))}
	for i, label := range labels {
		peak := lo + float64(i)*step
		left := peak - step
		right := peak + step
		switch i {
		case 0:
			// Left shoulder: full membership below the first peak.
			v.Terms[i] = Term{Name: label, MF: Trapezoidal{A: lo - step, B: lo - step, C: peak, D: right}}
		case len(labels) - 1:
			// Right shoulder: full membership above the last peak.
			v.Terms[i] = Term{Name: label, MF: Trapezoidal{A: left, B: peak, C: hi + step, D: hi + step}}
		default:
			v.Terms[i] = Term{Name: label, MF: Triangular{Left: left, Peak: peak, Right: right}}
		}
	}
	return v
}

// Fuzzify returns the membership degree of x in every term, keyed by term
// name.
func (v *Variable) Fuzzify(x float64) map[string]float64 {
	out := make(map[string]float64, len(v.Terms))
	for _, t := range v.Terms {
		out[t.Name] = t.MF.Eval(x)
	}
	return out
}

// BestTerm returns the term with the highest membership for x and its
// degree; ties break toward the earlier term.
func (v *Variable) BestTerm(x float64) (string, float64) {
	bestName := ""
	bestDeg := -1.0
	for _, t := range v.Terms {
		if d := t.MF.Eval(x); d > bestDeg {
			bestName, bestDeg = t.Name, d
		}
	}
	return bestName, bestDeg
}

// Describe renders x linguistically, e.g. "activity is high (0.83)".
func (v *Variable) Describe(x float64) string {
	name, deg := v.BestTerm(x)
	return fmt.Sprintf("%s is %s (%.2f)", v.Name, name, deg)
}

// VerbalizeRules renders a TSK rule base using the variables' term names:
// every Gaussian antecedent is described by the best-matching term at its
// center. vars must cover the system's inputs.
func VerbalizeRules(sys *TSK, vars []*Variable) (string, error) {
	if len(vars) != sys.Inputs() {
		return "", fmt.Errorf("%w: %d variables for %d inputs", ErrArity, len(vars), sys.Inputs())
	}
	var sb strings.Builder
	for j := 0; j < sys.NumRules(); j++ {
		rule := sys.Rule(j)
		fmt.Fprintf(&sb, "R%d: IF ", j+1)
		for i, mf := range rule.Antecedent {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			term, _ := vars[i].BestTerm(mf.Mu)
			fmt.Fprintf(&sb, "%s is %s", vars[i].Name, term)
		}
		sb.WriteString(" THEN f(v) = ")
		for i := 0; i < sys.Inputs(); i++ {
			fmt.Fprintf(&sb, "%+.3g·%s ", rule.Coeffs[i], vars[i].Name)
		}
		fmt.Fprintf(&sb, "%+.3g\n", rule.Coeffs[sys.Inputs()])
	}
	return sb.String(), nil
}
