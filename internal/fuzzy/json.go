package fuzzy

import (
	"encoding/json"
	"fmt"
)

// tskJSON is the serialized wire form of a TSK system.
type tskJSON struct {
	Inputs int    `json:"inputs"`
	Rules  []Rule `json:"rules"`
}

// MarshalJSON encodes the system with its input arity and full rule base.
func (t *TSK) MarshalJSON() ([]byte, error) {
	return json.Marshal(tskJSON{Inputs: t.inputs, Rules: t.rules})
}

// UnmarshalJSON decodes and validates a serialized TSK system.
func (t *TSK) UnmarshalJSON(data []byte) error {
	var w tskJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("fuzzy: decoding TSK: %w", err)
	}
	sys, err := NewTSK(w.Inputs, w.Rules)
	if err != nil {
		return fmt.Errorf("fuzzy: validating decoded TSK: %w", err)
	}
	*t = *sys
	return nil
}
