package fuzzy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGaussianPeakAndSymmetry(t *testing.T) {
	g := NewGaussian(2, 0.5)
	if got := g.Eval(2); got != 1 {
		t.Errorf("Eval at mu = %v, want 1", got)
	}
	if math.Abs(g.Eval(1.3)-g.Eval(2.7)) > 1e-15 {
		t.Error("Gaussian not symmetric around mu")
	}
	// One sigma out: exp(-1/2).
	if got := g.Eval(2.5); math.Abs(got-math.Exp(-0.5)) > 1e-12 {
		t.Errorf("Eval(mu+sigma) = %v, want exp(-1/2)", got)
	}
}

func TestGaussianPanicsOnBadSigma(t *testing.T) {
	for _, sigma := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGaussian sigma=%v did not panic", sigma)
				}
			}()
			NewGaussian(0, sigma)
		}()
	}
}

func TestGaussianGradientsMatchNumerical(t *testing.T) {
	g := NewGaussian(0.7, 0.3)
	const h = 1e-6
	for _, x := range []float64{0.1, 0.5, 0.7, 0.9, 1.5} {
		// dF/dmu numerically.
		up := Gaussian{Mu: g.Mu + h, Sigma: g.Sigma}
		dn := Gaussian{Mu: g.Mu - h, Sigma: g.Sigma}
		numMu := (up.Eval(x) - dn.Eval(x)) / (2 * h)
		if got := g.GradMu(x); math.Abs(got-numMu) > 1e-5 {
			t.Errorf("GradMu(%v) = %v, numerical %v", x, got, numMu)
		}
		// dF/dsigma numerically.
		us := Gaussian{Mu: g.Mu, Sigma: g.Sigma + h}
		ds := Gaussian{Mu: g.Mu, Sigma: g.Sigma - h}
		numSig := (us.Eval(x) - ds.Eval(x)) / (2 * h)
		if got := g.GradSigma(x); math.Abs(got-numSig) > 1e-5 {
			t.Errorf("GradSigma(%v) = %v, numerical %v", x, got, numSig)
		}
	}
}

func TestBell(t *testing.T) {
	b := Bell{A: 2, B: 4, C: 6}
	if got := b.Eval(6); got != 1 {
		t.Errorf("Eval at center = %v, want 1", got)
	}
	// At c ± a the bell is at 0.5.
	if got := b.Eval(8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Eval(c+a) = %v, want 0.5", got)
	}
	if math.Abs(b.Eval(4)-b.Eval(8)) > 1e-12 {
		t.Error("Bell not symmetric")
	}
	// Degenerate width.
	z := Bell{A: 0, B: 1, C: 3}
	if z.Eval(3) != 1 || z.Eval(4) != 0 {
		t.Error("degenerate Bell mishandled")
	}
}

func TestTriangular(t *testing.T) {
	tri := Triangular{Left: 0, Peak: 1, Right: 3}
	tests := []struct {
		x, want float64
	}{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 0.5}, {3, 0}, {4, 0},
	}
	for _, tt := range tests {
		if got := tri.Eval(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	// Spike at a single point.
	spike := Triangular{Left: 1, Peak: 1, Right: 1}
	if spike.Eval(1) != 1 {
		t.Error("degenerate triangle should fire at its peak")
	}
}

func TestTrapezoidal(t *testing.T) {
	tr := Trapezoidal{A: 0, B: 1, C: 2, D: 4}
	tests := []struct {
		x, want float64
	}{
		{-1, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1}, {2, 1}, {3, 0.5}, {5, 0},
	}
	for _, tt := range tests {
		if got := tr.Eval(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	// Rectangle (no slopes).
	rect := Trapezoidal{A: 1, B: 1, C: 2, D: 2}
	if rect.Eval(1) != 1 || rect.Eval(2) != 1 || rect.Eval(1.5) != 1 {
		t.Error("rectangular trapezoid core should be 1")
	}
}

func TestSigmoid(t *testing.T) {
	s := Sigmoid{A: 2, C: 1}
	if got := s.Eval(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Eval at inflection = %v, want 0.5", got)
	}
	if s.Eval(10) < 0.99 {
		t.Error("sigmoid should saturate high")
	}
	if s.Eval(-10) > 0.01 {
		t.Error("sigmoid should saturate low")
	}
	neg := Sigmoid{A: -2, C: 1}
	if neg.Eval(10) > 0.01 {
		t.Error("negative slope should open leftward")
	}
}

func TestMembershipRangeProperty(t *testing.T) {
	// Every membership function yields degrees in [0,1] over sane inputs.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mfs := []Membership{
			NewGaussian(r.NormFloat64(), 0.1+r.Float64()),
			Bell{A: 0.5 + r.Float64(), B: 0.5 + 3*r.Float64(), C: r.NormFloat64()},
			Triangular{Left: -1, Peak: r.Float64(), Right: 2},
			Trapezoidal{A: -2, B: -1, C: 1, D: 2},
			Sigmoid{A: 4 * (r.Float64() - 0.5), C: r.NormFloat64()},
		}
		for i := 0; i < 50; i++ {
			x := 10 * (r.Float64() - 0.5)
			for _, mf := range mfs {
				d := mf.Eval(x)
				if d < 0 || d > 1 || math.IsNaN(d) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
