package fuzzy

import (
	"fmt"
	"math"
)

// TNorm is a fuzzy conjunction operator combining two membership degrees.
type TNorm func(a, b float64) float64

// SNorm is a fuzzy disjunction operator combining two membership degrees.
type SNorm func(a, b float64) float64

// Standard norms. The paper's rule weights use the product T-norm
// (w_j = Π_i F_ij(v_i)); Min/Max are provided for Mamdani-style systems.
var (
	// ProdNorm is the algebraic product T-norm.
	ProdNorm TNorm = func(a, b float64) float64 { return a * b }
	// MinNorm is the Gödel (minimum) T-norm.
	MinNorm TNorm = math.Min
	// MaxNorm is the maximum S-norm.
	MaxNorm SNorm = math.Max
	// ProbOrNorm is the probabilistic-sum S-norm a + b − a·b.
	ProbOrNorm SNorm = func(a, b float64) float64 { return a + b - a*b }
)

// Complement returns the standard fuzzy negation 1 − a.
func Complement(a float64) float64 { return 1 - a }

// Set is a discrete fuzzy set: membership degrees sampled over a finite
// universe. It backs the Mamdani output aggregation and the set-algebra
// helpers used in tests and examples.
type Set struct {
	universe []float64
	degrees  []float64
}

// NewSet samples the membership function over n evenly spaced points of
// [lo, hi]. It panics for n < 2 or an empty interval (programming errors).
func NewSet(m Membership, lo, hi float64, n int) *Set {
	if n < 2 {
		panic(fmt.Sprintf("fuzzy: set needs >= 2 samples, got %d", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("fuzzy: empty universe [%v,%v]", lo, hi))
	}
	s := &Set{
		universe: make([]float64, n),
		degrees:  make([]float64, n),
	}
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		x := lo + float64(i)*step
		s.universe[i] = x
		s.degrees[i] = clamp01(m.Eval(x))
	}
	return s
}

// Len returns the number of samples in the set.
func (s *Set) Len() int { return len(s.universe) }

// At returns the i-th universe point and its membership degree.
func (s *Set) At(i int) (x, degree float64) {
	return s.universe[i], s.degrees[i]
}

// Combine merges two sets over the same universe with the given operator,
// returning a new set. It panics when the universes differ (programming
// error: sets built from the same NewSet parameters always agree).
func (s *Set) Combine(other *Set, op func(a, b float64) float64) *Set {
	if len(s.universe) != len(other.universe) {
		panic(fmt.Sprintf("fuzzy: combining sets with %d vs %d samples", len(s.universe), len(other.universe)))
	}
	out := &Set{
		universe: make([]float64, len(s.universe)),
		degrees:  make([]float64, len(s.degrees)),
	}
	copy(out.universe, s.universe)
	for i := range s.degrees {
		out.degrees[i] = clamp01(op(s.degrees[i], other.degrees[i]))
	}
	return out
}

// Clip returns a copy of the set with membership degrees clipped at level —
// Mamdani implication by truncation.
func (s *Set) Clip(level float64) *Set {
	out := &Set{
		universe: make([]float64, len(s.universe)),
		degrees:  make([]float64, len(s.degrees)),
	}
	copy(out.universe, s.universe)
	for i, d := range s.degrees {
		out.degrees[i] = math.Min(d, clamp01(level))
	}
	return out
}

// Scale returns a copy with membership degrees multiplied by level —
// Mamdani implication by scaling (product implication).
func (s *Set) Scale(level float64) *Set {
	out := &Set{
		universe: make([]float64, len(s.universe)),
		degrees:  make([]float64, len(s.degrees)),
	}
	copy(out.universe, s.universe)
	for i, d := range s.degrees {
		out.degrees[i] = clamp01(d * level)
	}
	return out
}

// Centroid returns the center of gravity of the set, the classic Mamdani
// defuzzifier. The second result is false when the set has zero area.
func (s *Set) Centroid() (float64, bool) {
	var num, den float64
	for i, d := range s.degrees {
		num += s.universe[i] * d
		den += d
	}
	if den == 0 {
		return 0, false
	}
	return num / den, true
}

// Height returns the largest membership degree in the set.
func (s *Set) Height() float64 {
	var h float64
	for _, d := range s.degrees {
		if d > h {
			h = d
		}
	}
	return h
}

// Support returns the interval [lo, hi] spanned by universe points with
// non-zero membership; ok is false for an all-zero set.
func (s *Set) Support() (lo, hi float64, ok bool) {
	first, last := -1, -1
	for i, d := range s.degrees {
		if d > 0 {
			if first == -1 {
				first = i
			}
			last = i
		}
	}
	if first == -1 {
		return 0, 0, false
	}
	return s.universe[first], s.universe[last], true
}

func clamp01(x float64) float64 {
	switch {
	case x < 0 || math.IsNaN(x):
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}
