// Package fuzzy implements the fuzzy-logic substrate of the CQM system:
// membership functions, fuzzy set algebra, and Takagi–Sugeno–Kang (TSK)
// fuzzy inference systems with Gaussian antecedents and linear consequents
// (paper §2.1.2).
//
// A TSK rule j over the input v_Q = (v_1, …, v_n, c) reads
//
//	IF F_1j(v_1) AND … AND F_(n+1)j(c) THEN f_j(v_Q)
//
// with Gaussian membership functions F_ij(x) = exp(−(x−µ_ij)²/(2σ_ij²)) and
// linear consequents f_j(v_Q) = a_1j·v_1 + … + a_(n+1)j·c + a_(n+2)j. The
// system output is the weighted sum average
//
//	S(v) = Σ_j w_j(v)·f_j(v) / Σ_j w_j(v),  w_j(v) = Π_i F_ij(v_i),
//
// which combines fuzzy reasoning and defuzzification in one step.
//
// The same TSK machinery serves both roles in the paper's architecture:
// the AwarePen's own context classifier and the quality FIS S_Q stacked on
// top of it. A small Mamdani system is included for comparison experiments.
package fuzzy
