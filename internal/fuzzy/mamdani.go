package fuzzy

import (
	"fmt"
	"math"
)

// MamdaniRule is one rule of a Mamdani system: per-input membership
// functions and an output fuzzy set over the output universe.
type MamdaniRule struct {
	Antecedent []Membership
	Output     Membership
}

// Defuzzifier selects how the aggregated output set becomes a crisp value.
type Defuzzifier int

// Supported defuzzifiers.
const (
	// Centroid is the center of gravity — the classic choice and the
	// zero-value default.
	Centroid Defuzzifier = iota
	// Bisector splits the aggregated area into two equal halves.
	Bisector
	// MeanOfMaxima averages the universe points at the maximum degree.
	MeanOfMaxima
	// SmallestOfMaxima takes the leftmost maximum point.
	SmallestOfMaxima
)

// String names the defuzzifier.
func (d Defuzzifier) String() string {
	switch d {
	case Centroid:
		return "centroid"
	case Bisector:
		return "bisector"
	case MeanOfMaxima:
		return "mean-of-maxima"
	case SmallestOfMaxima:
		return "smallest-of-maxima"
	default:
		return fmt.Sprintf("Defuzzifier(%d)", int(d))
	}
}

// Mamdani is a minimal Mamdani fuzzy inference system used as a comparison
// point for the TSK systems: min T-norm antecedents, clip implication, max
// aggregation, configurable defuzzification.
type Mamdani struct {
	inputs     int
	rules      []MamdaniRule
	outLo      float64
	outHi      float64
	resolution int
	// Defuzz selects the defuzzifier; the zero value is Centroid.
	Defuzz Defuzzifier
}

// NewMamdani returns a Mamdani system over n inputs whose output universe
// is [outLo, outHi] sampled at the given resolution.
func NewMamdani(n int, rules []MamdaniRule, outLo, outHi float64, resolution int) (*Mamdani, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d inputs", ErrArity, n)
	}
	if len(rules) == 0 {
		return nil, ErrNoRules
	}
	if outHi <= outLo {
		return nil, fmt.Errorf("%w: output universe [%v,%v]", ErrBadRule, outLo, outHi)
	}
	if resolution < 2 {
		resolution = 101
	}
	for j, r := range rules {
		if len(r.Antecedent) != n {
			return nil, fmt.Errorf("rule %d: %w: %d antecedents for %d inputs", j, ErrBadRule, len(r.Antecedent), n)
		}
		if r.Output == nil {
			return nil, fmt.Errorf("rule %d: %w: nil output set", j, ErrBadRule)
		}
	}
	owned := make([]MamdaniRule, len(rules))
	copy(owned, rules)
	return &Mamdani{
		inputs:     n,
		rules:      owned,
		outLo:      outLo,
		outHi:      outHi,
		resolution: resolution,
	}, nil
}

// Eval runs min-clip-max-centroid inference for the input vector. It
// returns ErrNoActivation when no rule fires.
func (m *Mamdani) Eval(v []float64) (float64, error) {
	if len(v) != m.inputs {
		return 0, fmt.Errorf("%w: got %d inputs, want %d", ErrArity, len(v), m.inputs)
	}
	agg := make([]float64, m.resolution)
	step := (m.outHi - m.outLo) / float64(m.resolution-1)
	fired := false
	for _, r := range m.rules {
		level := 1.0
		for i, mf := range r.Antecedent {
			level = math.Min(level, mf.Eval(v[i]))
		}
		if level <= 0 {
			continue
		}
		fired = true
		for k := 0; k < m.resolution; k++ {
			x := m.outLo + float64(k)*step
			clipped := math.Min(level, r.Output.Eval(x))
			if clipped > agg[k] {
				agg[k] = clipped
			}
		}
	}
	if !fired {
		return 0, fmt.Errorf("%w: %v", ErrNoActivation, v)
	}
	return m.defuzzify(agg, step)
}

// defuzzify reduces the aggregated output set to a crisp value.
func (m *Mamdani) defuzzify(agg []float64, step float64) (float64, error) {
	at := func(k int) float64 { return m.outLo + float64(k)*step }
	var area float64
	for _, d := range agg {
		area += d
	}
	if area == 0 {
		return 0, fmt.Errorf("%w: aggregated set has zero area", ErrNoActivation)
	}
	switch m.Defuzz {
	case Centroid:
		var num float64
		for k, d := range agg {
			num += at(k) * d
		}
		return num / area, nil
	case Bisector:
		var acc float64
		for k, d := range agg {
			acc += d
			if acc >= area/2 {
				return at(k), nil
			}
		}
		return at(len(agg) - 1), nil
	case MeanOfMaxima, SmallestOfMaxima:
		maxD := 0.0
		for _, d := range agg {
			if d > maxD {
				maxD = d
			}
		}
		var sum float64
		count := 0
		first := -1
		for k, d := range agg {
			if d >= maxD-1e-12 {
				if first < 0 {
					first = k
				}
				sum += at(k)
				count++
			}
		}
		if m.Defuzz == SmallestOfMaxima {
			return at(first), nil
		}
		return sum / float64(count), nil
	default:
		return 0, fmt.Errorf("fuzzy: unsupported defuzzifier %v", m.Defuzz)
	}
}
