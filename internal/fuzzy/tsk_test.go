package fuzzy

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// twoRuleSystem builds a simple 1-input TSK system with rules centered at 0
// and 1 whose consequents are the constants 0 and 1 respectively.
func twoRuleSystem(t *testing.T) *TSK {
	t.Helper()
	sys, err := NewTSK(1, []Rule{
		{Antecedent: []Gaussian{{Mu: 0, Sigma: 0.3}}, Coeffs: []float64{0, 0}},
		{Antecedent: []Gaussian{{Mu: 1, Sigma: 0.3}}, Coeffs: []float64{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTSKEvalAtRuleCenters(t *testing.T) {
	sys := twoRuleSystem(t)
	// At x=0 rule 1 dominates → output near 0; at x=1 rule 2 → near 1.
	y0, err := sys.Eval([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if y0 > 0.01 {
		t.Errorf("Eval(0) = %v, want ~0", y0)
	}
	y1, err := sys.Eval([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if y1 < 0.99 {
		t.Errorf("Eval(1) = %v, want ~1", y1)
	}
	// Midpoint: symmetric rules → exactly 0.5.
	ym, err := sys.Eval([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ym-0.5) > 1e-12 {
		t.Errorf("Eval(0.5) = %v, want 0.5", ym)
	}
}

func TestTSKWeightedSumAverageFormula(t *testing.T) {
	// Hand-check the weighted sum average against a manual computation.
	sys, err := NewTSK(2, []Rule{
		{
			Antecedent: []Gaussian{{Mu: 0, Sigma: 1}, {Mu: 0, Sigma: 1}},
			Coeffs:     []float64{1, 2, 3}, // f = v1 + 2 v2 + 3
		},
		{
			Antecedent: []Gaussian{{Mu: 1, Sigma: 2}, {Mu: 1, Sigma: 2}},
			Coeffs:     []float64{-1, 0, 1}, // f = −v1 + 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{0.5, -0.5}
	w1 := math.Exp(-0.125) * math.Exp(-0.125)
	w2 := math.Exp(-0.03125) * math.Exp(-0.28125)
	f1 := 0.5 + 2*(-0.5) + 3
	f2 := -0.5 + 1
	want := (w1*f1 + w2*f2) / (w1 + w2)
	got, err := sys.Eval(v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Eval = %v, want %v", got, want)
	}
}

func TestTSKEvalDetailConsistent(t *testing.T) {
	sys := twoRuleSystem(t)
	d, err := sys.EvalDetail([]float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Weights) != 2 || len(d.Consequents) != 2 {
		t.Fatalf("detail sizes: %d weights, %d consequents", len(d.Weights), len(d.Consequents))
	}
	var sum, out float64
	for j := range d.Weights {
		sum += d.Weights[j]
		out += d.Weights[j] * d.Consequents[j]
	}
	if math.Abs(sum-d.WeightSum) > 1e-15 {
		t.Errorf("WeightSum inconsistent: %v vs %v", sum, d.WeightSum)
	}
	if math.Abs(out/sum-d.Output) > 1e-15 {
		t.Errorf("Output inconsistent: %v vs %v", out/sum, d.Output)
	}
}

func TestTSKOutputBoundedByConsequentsForConstantRules(t *testing.T) {
	// With constant consequents the weighted average must stay inside the
	// consequent range — the convexity property the CQM normalization
	// relies on being violated only through the *linear* terms.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(4)
		rules := make([]Rule, m)
		lo, hi := math.Inf(1), math.Inf(-1)
		for j := range rules {
			c := r.Float64()
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
			rules[j] = Rule{
				Antecedent: []Gaussian{{Mu: r.Float64(), Sigma: 0.1 + r.Float64()}},
				Coeffs:     []float64{0, c},
			}
		}
		sys, err := NewTSK(1, rules)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			y, err := sys.Eval([]float64{r.Float64()})
			if err != nil {
				return false
			}
			if y < lo-1e-9 || y > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTSKValidation(t *testing.T) {
	valid := Rule{Antecedent: []Gaussian{{Mu: 0, Sigma: 1}}, Coeffs: []float64{1, 0}}
	tests := []struct {
		name  string
		n     int
		rules []Rule
	}{
		{"no rules", 1, nil},
		{"zero inputs", 0, []Rule{valid}},
		{"wrong antecedents", 2, []Rule{valid}},
		{"wrong coeffs", 1, []Rule{{Antecedent: valid.Antecedent, Coeffs: []float64{1}}}},
		{"bad sigma", 1, []Rule{{Antecedent: []Gaussian{{Mu: 0, Sigma: 0}}, Coeffs: []float64{1, 0}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewTSK(tt.n, tt.rules); err == nil {
				t.Error("invalid system accepted")
			}
		})
	}
}

func TestTSKArityError(t *testing.T) {
	sys := twoRuleSystem(t)
	if _, err := sys.Eval([]float64{1, 2}); !errors.Is(err, ErrArity) {
		t.Errorf("err = %v, want ErrArity", err)
	}
}

func TestTSKNoActivation(t *testing.T) {
	// Rules so far from the input that both weights underflow to 0.
	sys, err := NewTSK(1, []Rule{
		{Antecedent: []Gaussian{{Mu: 0, Sigma: 1e-3}}, Coeffs: []float64{0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Eval([]float64{1e9}); !errors.Is(err, ErrNoActivation) {
		t.Errorf("err = %v, want ErrNoActivation", err)
	}
}

func TestTSKRuleAccessorsCopy(t *testing.T) {
	sys := twoRuleSystem(t)
	r := sys.Rule(0)
	r.Coeffs[0] = 999
	r.Antecedent[0].Mu = 999
	if got := sys.Rule(0); got.Coeffs[0] == 999 || got.Antecedent[0].Mu == 999 {
		t.Error("Rule returned aliased storage")
	}
}

func TestTSKSetRule(t *testing.T) {
	sys := twoRuleSystem(t)
	repl := Rule{Antecedent: []Gaussian{{Mu: 5, Sigma: 2}}, Coeffs: []float64{0, 7}}
	if err := sys.SetRule(1, repl); err != nil {
		t.Fatal(err)
	}
	if got := sys.Rule(1); got.Antecedent[0].Mu != 5 {
		t.Error("SetRule did not persist")
	}
	if err := sys.SetRule(9, repl); err == nil {
		t.Error("out-of-range SetRule accepted")
	}
	bad := Rule{Antecedent: []Gaussian{{Mu: 0, Sigma: -1}}, Coeffs: []float64{0, 0}}
	if err := sys.SetRule(0, bad); err == nil {
		t.Error("invalid SetRule accepted")
	}
}

func TestTSKCloneIndependent(t *testing.T) {
	sys := twoRuleSystem(t)
	cp := sys.Clone()
	if err := cp.SetRule(0, Rule{Antecedent: []Gaussian{{Mu: 9, Sigma: 1}}, Coeffs: []float64{0, 9}}); err != nil {
		t.Fatal(err)
	}
	if sys.Rule(0).Antecedent[0].Mu == 9 {
		t.Error("Clone shares storage with original")
	}
}

func TestTSKJSONRoundTrip(t *testing.T) {
	sys := twoRuleSystem(t)
	data, err := json.Marshal(sys)
	if err != nil {
		t.Fatal(err)
	}
	var back TSK
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Inputs() != sys.Inputs() || back.NumRules() != sys.NumRules() {
		t.Fatal("round trip lost shape")
	}
	for _, x := range []float64{-0.5, 0, 0.3, 1, 2} {
		a, errA := sys.Eval([]float64{x})
		b, errB := back.Eval([]float64{x})
		if (errA == nil) != (errB == nil) || math.Abs(a-b) > 1e-15 {
			t.Errorf("round trip differs at %v: %v vs %v", x, a, b)
		}
	}
}

func TestTSKJSONRejectsInvalid(t *testing.T) {
	var sys TSK
	if err := json.Unmarshal([]byte(`{"inputs":0,"rules":[]}`), &sys); err == nil {
		t.Error("invalid serialized system accepted")
	}
	if err := json.Unmarshal([]byte(`{nonsense`), &sys); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestTSKString(t *testing.T) {
	s := twoRuleSystem(t).String()
	if !strings.Contains(s, "IF") || !strings.Contains(s, "THEN") {
		t.Errorf("String missing linguistic form: %q", s)
	}
	if !strings.Contains(s, "2 rules") {
		t.Errorf("String missing rule count: %q", s)
	}
}
