package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNorms(t *testing.T) {
	if got := ProdNorm(0.5, 0.4); math.Abs(got-0.2) > 1e-15 {
		t.Errorf("ProdNorm = %v, want 0.2", got)
	}
	if got := MinNorm(0.5, 0.4); math.Abs(got-0.4) > 1e-15 {
		t.Errorf("MinNorm = %v, want 0.4", got)
	}
	if MaxNorm(0.5, 0.4) != 0.5 {
		t.Error("MaxNorm wrong")
	}
	if got := ProbOrNorm(0.5, 0.4); math.Abs(got-0.7) > 1e-15 {
		t.Errorf("ProbOrNorm = %v, want 0.7", got)
	}
	if got := Complement(0.3); math.Abs(got-0.7) > 1e-15 {
		t.Errorf("Complement = %v, want 0.7", got)
	}
}

func TestTNormProperties(t *testing.T) {
	// Commutativity, monotonicity, identity with 1, zero with 0.
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1)
		b = math.Mod(math.Abs(b), 1)
		for _, norm := range []TNorm{ProdNorm, MinNorm} {
			if norm(a, b) != norm(b, a) {
				return false
			}
			if math.Abs(norm(a, 1)-a) > 1e-15 {
				return false
			}
			if norm(a, 0) != 0 {
				return false
			}
			if norm(a, b) > math.Min(a, b)+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetSamplingAndCentroid(t *testing.T) {
	s := NewSet(Triangular{Left: 0, Peak: 1, Right: 2}, 0, 2, 201)
	if s.Len() != 201 {
		t.Fatalf("Len = %d", s.Len())
	}
	c, ok := s.Centroid()
	if !ok {
		t.Fatal("centroid of non-empty set reported empty")
	}
	if math.Abs(c-1) > 1e-9 {
		t.Errorf("Centroid = %v, want 1 (symmetric triangle)", c)
	}
	if h := s.Height(); math.Abs(h-1) > 1e-12 {
		t.Errorf("Height = %v, want 1", h)
	}
}

func TestSetCombineUnionIntersection(t *testing.T) {
	a := NewSet(Triangular{Left: 0, Peak: 0.5, Right: 1}, 0, 2, 101)
	b := NewSet(Triangular{Left: 1, Peak: 1.5, Right: 2}, 0, 2, 101)
	union := a.Combine(b, MaxNorm)
	inter := a.Combine(b, MinNorm)
	// Disjoint supports: intersection is (nearly) empty, union covers both peaks.
	if h := inter.Height(); h > 1e-9 {
		t.Errorf("intersection height = %v, want ~0", h)
	}
	if h := union.Height(); math.Abs(h-1) > 1e-12 {
		t.Errorf("union height = %v, want 1", h)
	}
	lo, hi, ok := union.Support()
	if !ok || lo > 0.1 || hi < 1.9 {
		t.Errorf("union support = [%v,%v] ok=%v", lo, hi, ok)
	}
}

func TestSetClipAndScale(t *testing.T) {
	s := NewSet(Triangular{Left: 0, Peak: 1, Right: 2}, 0, 2, 101)
	clipped := s.Clip(0.5)
	if h := clipped.Height(); math.Abs(h-0.5) > 1e-12 {
		t.Errorf("clipped height = %v, want 0.5", h)
	}
	scaled := s.Scale(0.5)
	if h := scaled.Height(); math.Abs(h-0.5) > 1e-12 {
		t.Errorf("scaled height = %v, want 0.5", h)
	}
	// Original untouched.
	if h := s.Height(); math.Abs(h-1) > 1e-12 {
		t.Error("Clip/Scale mutated receiver")
	}
	// Clip truncates the shoulders flat; scale keeps proportions.
	_, dClip := clipped.At(50) // peak position
	_, dScale := scaled.At(25) // halfway up the left slope (0.5 → 0.25 scaled)
	if math.Abs(dClip-0.5) > 1e-12 {
		t.Errorf("clip at peak = %v", dClip)
	}
	if math.Abs(dScale-0.25) > 1e-9 {
		t.Errorf("scale at mid-slope = %v, want 0.25", dScale)
	}
}

func TestSetEmptyCentroid(t *testing.T) {
	// A set sampled where the membership function is zero everywhere.
	s := NewSet(Triangular{Left: 10, Peak: 11, Right: 12}, 0, 1, 11)
	if _, ok := s.Centroid(); ok {
		t.Error("empty set centroid reported ok")
	}
	if _, _, ok := s.Support(); ok {
		t.Error("empty set support reported ok")
	}
}

func TestSetPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { NewSet(Gaussian{Mu: 0, Sigma: 1}, 0, 1, 1) },
		func() { NewSet(Gaussian{Mu: 0, Sigma: 1}, 1, 0, 10) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMamdaniBasic(t *testing.T) {
	// One input: "low" maps to output around 0.2, "high" to around 0.8.
	rules := []MamdaniRule{
		{
			Antecedent: []Membership{Triangular{Left: -1, Peak: 0, Right: 1}},
			Output:     Triangular{Left: 0, Peak: 0.2, Right: 0.4},
		},
		{
			Antecedent: []Membership{Triangular{Left: 0, Peak: 1, Right: 2}},
			Output:     Triangular{Left: 0.6, Peak: 0.8, Right: 1},
		},
	}
	m, err := NewMamdani(1, rules, 0, 1, 501)
	if err != nil {
		t.Fatal(err)
	}
	y0, err := m.Eval([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y0-0.2) > 0.02 {
		t.Errorf("Eval(0) = %v, want ~0.2", y0)
	}
	y1, err := m.Eval([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y1-0.8) > 0.02 {
		t.Errorf("Eval(1) = %v, want ~0.8", y1)
	}
	// Between the rules the output interpolates.
	ym, err := m.Eval([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ym < 0.3 || ym > 0.7 {
		t.Errorf("Eval(0.5) = %v, want mid-range", ym)
	}
}

func TestMamdaniDefuzzifiers(t *testing.T) {
	// One rule fully fired: the aggregated set is the output triangle
	// peaked at 0.5, where every defuzzifier has a known answer.
	rules := []MamdaniRule{{
		Antecedent: []Membership{Trapezoidal{A: -1, B: -1, C: 1, D: 1}},
		Output:     Triangular{Left: 0.2, Peak: 0.5, Right: 0.8},
	}}
	for _, tc := range []struct {
		d    Defuzzifier
		want float64
		tol  float64
	}{
		{Centroid, 0.5, 0.01},
		{Bisector, 0.5, 0.01},
		{MeanOfMaxima, 0.5, 0.01},
		{SmallestOfMaxima, 0.5, 0.01},
	} {
		m, err := NewMamdani(1, rules, 0, 1, 501)
		if err != nil {
			t.Fatal(err)
		}
		m.Defuzz = tc.d
		got, err := m.Eval([]float64{0})
		if err != nil {
			t.Fatalf("%v: %v", tc.d, err)
		}
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%v = %v, want ~%v", tc.d, got, tc.want)
		}
	}
}

func TestMamdaniDefuzzifiersDifferOnSkewedSets(t *testing.T) {
	// A clipped asymmetric output: centroid and maxima-based defuzzifiers
	// must disagree.
	rules := []MamdaniRule{{
		Antecedent: []Membership{Trapezoidal{A: -1, B: -1, C: 1, D: 1}},
		Output:     Trapezoidal{A: 0, B: 0.7, C: 0.9, D: 1},
	}}
	eval := func(d Defuzzifier) float64 {
		m, err := NewMamdani(1, rules, 0, 1, 501)
		if err != nil {
			t.Fatal(err)
		}
		m.Defuzz = d
		got, err := m.Eval([]float64{0})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	centroid := eval(Centroid)
	mom := eval(MeanOfMaxima)
	som := eval(SmallestOfMaxima)
	if centroid >= mom {
		t.Errorf("centroid %v should sit left of mean-of-maxima %v", centroid, mom)
	}
	if som > mom {
		t.Errorf("smallest-of-maxima %v above mean %v", som, mom)
	}
}

func TestDefuzzifierString(t *testing.T) {
	for _, d := range []Defuzzifier{Centroid, Bisector, MeanOfMaxima, SmallestOfMaxima, Defuzzifier(99)} {
		if d.String() == "" {
			t.Errorf("empty name for %d", int(d))
		}
	}
}

func TestMamdaniErrors(t *testing.T) {
	out := Triangular{Left: 0, Peak: 0.5, Right: 1}
	good := []MamdaniRule{{
		Antecedent: []Membership{Triangular{Left: 0, Peak: 1, Right: 2}},
		Output:     out,
	}}
	if _, err := NewMamdani(0, good, 0, 1, 11); err == nil {
		t.Error("zero inputs accepted")
	}
	if _, err := NewMamdani(1, nil, 0, 1, 11); err == nil {
		t.Error("no rules accepted")
	}
	if _, err := NewMamdani(1, good, 1, 0, 11); err == nil {
		t.Error("empty output universe accepted")
	}
	bad := []MamdaniRule{{Antecedent: nil, Output: out}}
	if _, err := NewMamdani(1, bad, 0, 1, 11); err == nil {
		t.Error("bad arity rule accepted")
	}
	m, err := NewMamdani(1, good, 0, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Eval([]float64{1, 2}); err == nil {
		t.Error("bad input arity accepted")
	}
	// Input far outside every antecedent: nothing fires.
	if _, err := m.Eval([]float64{100}); err == nil {
		t.Error("no-activation input accepted")
	}
}
