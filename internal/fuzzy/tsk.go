package fuzzy

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// TSK inference errors.
var (
	// ErrNoRules reports evaluation of a system without rules.
	ErrNoRules = errors.New("fuzzy: TSK system has no rules")
	// ErrArity reports an input vector whose length does not match the
	// system's input dimension.
	ErrArity = errors.New("fuzzy: input arity mismatch")
	// ErrNoActivation reports an input that fires no rule: every rule
	// weight underflowed to zero, so the weighted sum average is undefined.
	ErrNoActivation = errors.New("fuzzy: no rule activation for input")
	// ErrBadRule reports a structurally invalid rule.
	ErrBadRule = errors.New("fuzzy: malformed rule")
)

// Rule is one TSK rule: a Gaussian antecedent per input dimension and a
// linear consequent f(v) = Coeffs[0]·v_0 + … + Coeffs[n−1]·v_(n−1) +
// Coeffs[n] (the final coefficient is the constant term a_(n+2)j of the
// paper).
type Rule struct {
	Antecedent []Gaussian `json:"antecedent"`
	Coeffs     []float64  `json:"coeffs"`
}

// validate checks the internal consistency of the rule for n inputs.
func (r *Rule) validate(n int) error {
	if len(r.Antecedent) != n {
		return fmt.Errorf("%w: %d antecedents for %d inputs", ErrBadRule, len(r.Antecedent), n)
	}
	if len(r.Coeffs) != n+1 {
		return fmt.Errorf("%w: %d coefficients for %d inputs (want %d)", ErrBadRule, len(r.Coeffs), n, n+1)
	}
	for i, mf := range r.Antecedent {
		if mf.Sigma <= 0 || math.IsNaN(mf.Sigma) {
			return fmt.Errorf("%w: antecedent %d has sigma %v", ErrBadRule, i, mf.Sigma)
		}
	}
	return nil
}

// Weight returns the rule's firing strength w(v) = Π_i F_i(v_i) using the
// product T-norm, as in the paper.
func (r *Rule) Weight(v []float64) float64 {
	w := 1.0
	for i, mf := range r.Antecedent {
		w *= mf.Eval(v[i])
	}
	return w
}

// Consequent returns the linear consequent value f(v).
func (r *Rule) Consequent(v []float64) float64 {
	n := len(v)
	out := r.Coeffs[n] // constant term
	for i, x := range v {
		out += r.Coeffs[i] * x
	}
	return out
}

// TSK is a Takagi–Sugeno–Kang fuzzy inference system with Gaussian
// antecedent membership functions and first-order (linear) consequents.
type TSK struct {
	inputs int
	rules  []Rule
}

// NewTSK returns a TSK system over n inputs with the given rules. Every
// rule is validated against n.
func NewTSK(n int, rules []Rule) (*TSK, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d inputs", ErrArity, n)
	}
	if len(rules) == 0 {
		return nil, ErrNoRules
	}
	owned := make([]Rule, len(rules))
	for j := range rules {
		if err := rules[j].validate(n); err != nil {
			return nil, fmt.Errorf("rule %d: %w", j, err)
		}
		owned[j] = cloneRule(rules[j])
	}
	return &TSK{inputs: n, rules: owned}, nil
}

func cloneRule(r Rule) Rule {
	out := Rule{
		Antecedent: make([]Gaussian, len(r.Antecedent)),
		Coeffs:     make([]float64, len(r.Coeffs)),
	}
	copy(out.Antecedent, r.Antecedent)
	copy(out.Coeffs, r.Coeffs)
	return out
}

// Inputs returns the input dimension n.
func (t *TSK) Inputs() int { return t.inputs }

// NumRules returns the number of rules m.
func (t *TSK) NumRules() int { return len(t.rules) }

// Rule returns a copy of rule j.
func (t *TSK) Rule(j int) Rule {
	return cloneRule(t.rules[j])
}

// SetRule replaces rule j after validation; the ANFIS trainer uses this to
// write back tuned parameters.
func (t *TSK) SetRule(j int, r Rule) error {
	if j < 0 || j >= len(t.rules) {
		return fmt.Errorf("%w: rule index %d of %d", ErrBadRule, j, len(t.rules))
	}
	if err := r.validate(t.inputs); err != nil {
		return err
	}
	t.rules[j] = cloneRule(r)
	return nil
}

// Clone returns a deep copy of the system.
func (t *TSK) Clone() *TSK {
	rules := make([]Rule, len(t.rules))
	for j := range t.rules {
		rules[j] = cloneRule(t.rules[j])
	}
	return &TSK{inputs: t.inputs, rules: rules}
}

// Eval computes the weighted sum average
// S(v) = Σ_j w_j(v)·f_j(v) / Σ_j w_j(v).
// It returns ErrNoActivation when every rule weight underflows to zero.
//
// Unlike EvalDetail, which materializes the per-rule trace for the ANFIS
// trainer, Eval accumulates the two sums in scalars: this is the
// per-observation scoring kernel and must not allocate.
//
//cqm:hotpath
func (t *TSK) Eval(v []float64) (float64, error) {
	if len(t.rules) == 0 {
		return 0, ErrNoRules
	}
	if len(v) != t.inputs {
		//lint:ignore hotpath-alloc cold arity-error path; never taken by a validated pipeline
		return 0, fmt.Errorf("%w: got %d inputs, want %d", ErrArity, len(v), t.inputs)
	}
	var sum, wsum float64
	for j := range t.rules {
		w := t.rules[j].Weight(v)
		sum += w * t.rules[j].Consequent(v)
		wsum += w
	}
	if wsum <= 0 {
		//lint:ignore hotpath-alloc cold underflow path; fires only when no rule activates at all
		return 0, fmt.Errorf("%w: %v", ErrNoActivation, v)
	}
	return sum / wsum, nil
}

// Detail is a full evaluation trace: per-rule firing strengths and
// consequent values alongside the aggregated output. The ANFIS trainer
// consumes these to compute gradients without re-evaluating membership
// functions.
type Detail struct {
	Weights     []float64 // w_j(v)
	Consequents []float64 // f_j(v)
	WeightSum   float64   // Σ_j w_j(v)
	Output      float64   // S(v)
}

// EvalDetail computes the output together with the evaluation trace.
func (t *TSK) EvalDetail(v []float64) (Detail, error) {
	if len(t.rules) == 0 {
		return Detail{}, ErrNoRules
	}
	if len(v) != t.inputs {
		return Detail{}, fmt.Errorf("%w: got %d inputs, want %d", ErrArity, len(v), t.inputs)
	}
	d := Detail{
		Weights:     make([]float64, len(t.rules)),
		Consequents: make([]float64, len(t.rules)),
	}
	for j := range t.rules {
		w := t.rules[j].Weight(v)
		f := t.rules[j].Consequent(v)
		d.Weights[j] = w
		d.Consequents[j] = f
		d.WeightSum += w
		d.Output += w * f
	}
	if d.WeightSum <= 0 {
		return Detail{}, fmt.Errorf("%w: %v", ErrNoActivation, v)
	}
	d.Output /= d.WeightSum
	return d, nil
}

// String renders the rule base in the linguistic form of the paper:
// "IF F_1j(v_1) AND … THEN f_j(v)".
func (t *TSK) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TSK FIS: %d inputs, %d rules\n", t.inputs, len(t.rules))
	for j, r := range t.rules {
		fmt.Fprintf(&sb, "R%d: IF ", j+1)
		for i, mf := range r.Antecedent {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			fmt.Fprintf(&sb, "v%d is N(%.3g, %.3g)", i+1, mf.Mu, mf.Sigma)
		}
		sb.WriteString(" THEN f = ")
		for i := 0; i < t.inputs; i++ {
			fmt.Fprintf(&sb, "%+.3g·v%d ", r.Coeffs[i], i+1)
		}
		fmt.Fprintf(&sb, "%+.3g\n", r.Coeffs[t.inputs])
	}
	return sb.String()
}
