package lint

import "go/token"

func init() {
	register(&Check{
		Name:  "determinism-taint",
		Doc:   "interprocedural taint: nondeterministic values must not reach encoders, artifacts, or bus publishes",
		Graph: runDeterminismTaint,
	})
}

// runDeterminismTaint propagates nondeterminism sources (wall clock,
// global math/rand, map iteration order, channel receive order) through
// the whole-program call graph and reports every value still carrying
// taint when it reaches an externalizing sink (JSON encoding, artifact
// writes, bus publishes, diagnostic renderers). Unlike the syntactic
// nondeterminism check — which bans the sources outright in internal
// library packages — this check runs everywhere, including cmd/ and test
// helpers, and catches flows laundered through intermediate functions.
// Sorting a tainted collection (sort.*, slices.Sort*) sanitizes it.
func runDeterminismTaint(gp *GraphPass) {
	eng := newTaintEngine(gp.Prog)
	eng.reportAll(func(pos token.Pos, srcs srcMask, sink string) {
		gp.Reportf(pos, "value derived from %s flows into %s; order the data or take the value as an input", srcs.describe(), sink)
	})
}
