package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// srcMask is a bit set of nondeterminism source kinds.
type srcMask uint8

const (
	srcClock     srcMask = 1 << iota // time.Now / Since / Until
	srcRand                          // global math/rand draws
	srcMapOrder                      // map iteration order
	srcChanOrder                     // channel receive / goroutine completion order
)

// describe renders the mask for diagnostics, deterministically.
func (m srcMask) describe() string {
	var parts []string
	if m&srcClock != 0 {
		parts = append(parts, "wall clock (time.Now)")
	}
	if m&srcRand != 0 {
		parts = append(parts, "global math/rand")
	}
	if m&srcMapOrder != 0 {
		parts = append(parts, "map iteration order")
	}
	if m&srcChanOrder != 0 {
		parts = append(parts, "channel receive order")
	}
	return strings.Join(parts, " and ")
}

// taintVal is the abstract value of the dataflow lattice: which source
// kinds may have influenced a value, and which parameters of the enclosing
// function flow into it (bit i set = parameter i; for methods the receiver
// is parameter 0 and declared parameters start at 1).
type taintVal struct {
	srcs   srcMask
	params uint64
}

func (t taintVal) empty() bool { return t.srcs == 0 && t.params == 0 }

func (t taintVal) join(o taintVal) taintVal {
	return taintVal{srcs: t.srcs | o.srcs, params: t.params | o.params}
}

// fnSummary is one function's interprocedural dataflow summary, grown
// monotonically to a fixpoint: which sources taint its return values,
// which parameters flow to its return values, and which parameters flow
// (transitively) into a sink.
type fnSummary struct {
	retSrcs    srcMask
	retParams  uint64
	sinkParams uint64
	sinkDesc   map[int]string // parameter index → sink description
}

func (s *fnSummary) noteSink(param int, desc string) bool {
	bit := uint64(1) << param
	if s.sinkParams&bit != 0 {
		return false
	}
	s.sinkParams |= bit
	if s.sinkDesc == nil {
		s.sinkDesc = make(map[int]string)
	}
	if _, ok := s.sinkDesc[param]; !ok {
		s.sinkDesc[param] = desc
	}
	return true
}

// taintEngine runs the whole-program propagation: per-function
// flow-insensitive analysis iterated over the call graph until every
// summary is stable, then one reporting pass over the stable summaries.
type taintEngine struct {
	prog *Program
	sums map[string]*fnSummary
}

func newTaintEngine(prog *Program) *taintEngine {
	e := &taintEngine{prog: prog, sums: make(map[string]*fnSummary)}
	for _, n := range prog.graph.Nodes() {
		if n.Decl != nil {
			e.sums[n.Key] = &fnSummary{}
		}
	}
	// Monotone joins over a finite lattice: the loop terminates; the cap
	// is a safety net against analysis bugs, not a correctness device.
	for round := 0; round < 64; round++ {
		changed := false
		for _, n := range e.prog.graph.Nodes() {
			if n.Decl == nil {
				continue
			}
			if e.analyze(n, nil) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e
}

// reportAll runs the reporting pass with stable summaries.
func (e *taintEngine) reportAll(report func(pos token.Pos, srcs srcMask, sink string)) {
	for _, n := range e.prog.graph.Nodes() {
		if n.Decl == nil {
			continue
		}
		seen := make(map[token.Pos]srcMask)
		e.analyze(n, func(pos token.Pos, srcs srcMask, sink string) {
			if prev, ok := seen[pos]; ok && prev&srcs == srcs {
				return
			}
			seen[pos] |= srcs
			report(pos, srcs, sink)
		})
	}
}

// fnScope is the per-function analysis state. Nested function literals are
// analyzed inside their enclosing declaration's scope so captured
// variables share taint.
type fnScope struct {
	eng       *taintEngine
	n         *Node
	info      *types.Info
	sum       *fnSummary
	params    map[types.Object]int
	vars      map[types.Object]taintVal
	sanitized map[types.Object]bool
	report    func(pos token.Pos, srcs srcMask, sink string)
	changed   bool
}

// analyze computes one function's summary; report is nil during
// propagation rounds. It returns whether the summary grew.
func (e *taintEngine) analyze(n *Node, report func(token.Pos, srcMask, string)) bool {
	sc := &fnScope{
		eng:       e,
		n:         n,
		info:      n.Info(),
		sum:       e.sums[n.Key],
		params:    make(map[types.Object]int),
		vars:      make(map[types.Object]taintVal),
		sanitized: make(map[types.Object]bool),
		report:    report,
	}
	before := *sc.sum
	beforeSinks := sc.sum.sinkParams

	// Parameter indexing: receiver (if any) is 0, parameters follow.
	idx := 0
	if recv := n.Decl.Recv; recv != nil {
		for _, f := range recv.List {
			for _, name := range f.Names {
				sc.params[sc.info.Defs[name]] = idx
			}
		}
		idx = 1
	}
	if n.Decl.Type.Params != nil {
		for _, f := range n.Decl.Type.Params.List {
			for _, name := range f.Names {
				sc.params[sc.info.Defs[name]] = idx
				idx++
			}
		}
	}

	// Inner fixpoint: flow-insensitive, so rescan until the local variable
	// taints stop growing.
	for pass := 0; pass < 32; pass++ {
		sc.changed = false
		sc.scanBody(n.Body, true)
		if !sc.changed {
			break
		}
	}
	after := *sc.sum
	return before.retSrcs != after.retSrcs || before.retParams != after.retParams ||
		beforeSinks != after.sinkParams
}

// taintObj joins t into the variable's taint.
func (sc *fnScope) taintObj(obj types.Object, t taintVal) {
	if obj == nil || t.empty() {
		return
	}
	cur := sc.vars[obj]
	next := cur.join(t)
	if next != cur {
		sc.vars[obj] = next
		sc.changed = true
	}
}

// rootObj resolves the variable at the base of an lvalue expression:
// s.f, a[i], *p, (x) all root at the identifier.
func (sc *fnScope) rootObj(expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return sc.info.ObjectOf(e)
		case *ast.SelectorExpr:
			// Package-qualified names root nowhere.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := sc.info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.TypeAssertExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// scanBody walks one body (descending into nested literals, whose
// variables share this scope), folding taint through statements. outer
// marks whether return statements belong to the analyzed declaration.
func (sc *fnScope) scanBody(body *ast.BlockStmt, outer bool) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			sc.scanBody(node.Body, false)
			return false
		case *ast.RangeStmt:
			sc.scanRange(node)
		case *ast.AssignStmt:
			sc.scanAssign(node)
		case *ast.ValueSpec:
			for _, name := range node.Names {
				for _, v := range node.Values {
					sc.taintObj(sc.info.Defs[name], sc.evalTaint(v))
				}
			}
		case *ast.ReturnStmt:
			if outer {
				for _, res := range node.Results {
					t := sc.evalTaint(res)
					if t.srcs&^sc.sum.retSrcs != 0 || t.params&^sc.sum.retParams != 0 {
						sc.sum.retSrcs |= t.srcs
						sc.sum.retParams |= t.params
						sc.changed = true
					}
				}
			}
		case *ast.CallExpr:
			// Visit for sink/sanitizer side effects even in expression
			// statements; evalTaint handles them.
			sc.evalTaint(node)
		}
		return true
	})
}

// scanRange folds one range statement: ranging over a map or a channel is
// an order source; ranging over tainted data propagates its taint.
func (sc *fnScope) scanRange(rng *ast.RangeStmt) {
	var order srcMask
	if tv, ok := sc.info.Types[rng.X]; ok {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			order = srcMapOrder
		case *types.Chan:
			order = srcChanOrder
		}
	}
	base := sc.evalTaint(rng.X)
	t := base.join(taintVal{srcs: order})
	if key, ok := rng.Key.(*ast.Ident); ok {
		sc.taintObj(sc.info.ObjectOf(key), t)
	}
	if val, ok := rng.Value.(*ast.Ident); ok {
		sc.taintObj(sc.info.ObjectOf(val), t)
	}
}

// scanAssign folds one assignment. Indexed writes (m[k] = v, a[i] = v) do
// not taint the container: writing each slot once yields the same content
// in any iteration order — the parallel pool's slot-write discipline.
// Appends and compound assignments are order-dependent and do propagate,
// except commutative integer updates (+=, *=, &=, |=, ^=), which are
// exact in any order.
func (sc *fnScope) scanAssign(as *ast.AssignStmt) {
	var rhs taintVal
	for _, r := range as.Rhs {
		rhs = rhs.join(sc.evalTaint(r))
	}
	if rhs.empty() {
		return
	}
	for _, l := range as.Lhs {
		if _, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			continue // slot write
		}
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			if sc.commutativeUpdate(l, as.Tok) {
				continue
			}
		}
		sc.taintObj(sc.rootObj(l), rhs)
	}
}

// commutativeUpdate reports whether a compound assignment to an integer
// lvalue commutes exactly (so iteration order cannot change the result).
func (sc *fnScope) commutativeUpdate(lhs ast.Expr, tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	tv, ok := sc.info.Types[lhs]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// evalTaint computes the abstract value of an expression, applying call
// side effects (sources, sinks, sanitizers, summaries) along the way.
func (sc *fnScope) evalTaint(expr ast.Expr) taintVal {
	switch e := expr.(type) {
	case nil:
		return taintVal{}
	case *ast.Ident:
		obj := sc.info.ObjectOf(e)
		if obj == nil {
			return taintVal{}
		}
		if i, ok := sc.params[obj]; ok {
			return taintVal{params: 1 << i}
		}
		if sc.sanitized[obj] {
			return taintVal{}
		}
		return sc.vars[obj]
	case *ast.ParenExpr:
		return sc.evalTaint(e.X)
	case *ast.StarExpr:
		return sc.evalTaint(e.X)
	case *ast.UnaryExpr:
		return sc.evalTaint(e.X)
	case *ast.BinaryExpr:
		return sc.evalTaint(e.X).join(sc.evalTaint(e.Y))
	case *ast.IndexExpr:
		return sc.evalTaint(e.X).join(sc.evalTaint(e.Index))
	case *ast.SliceExpr:
		return sc.evalTaint(e.X)
	case *ast.TypeAssertExpr:
		return sc.evalTaint(e.X)
	case *ast.SelectorExpr:
		return sc.objTaint(sc.rootObj(e))
	case *ast.CompositeLit:
		var t taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.join(sc.evalTaint(kv.Value))
				continue
			}
			t = t.join(sc.evalTaint(el))
		}
		return t
	case *ast.CallExpr:
		return sc.callTaint(e)
	default:
		return taintVal{}
	}
}

// objTaint returns the taint of one resolved object, honouring parameters
// and sanitization.
func (sc *fnScope) objTaint(obj types.Object) taintVal {
	if obj == nil {
		return taintVal{}
	}
	if i, ok := sc.params[obj]; ok {
		return taintVal{params: 1 << i}
	}
	if sc.sanitized[obj] {
		return taintVal{}
	}
	return sc.vars[obj]
}

// calleeOf resolves the called function object, or nil for dynamic calls.
func (sc *fnScope) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := sc.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := sc.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvExpr returns the receiver expression of a method call, or nil.
func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// callTaint folds one call: conversions and builtins propagate, sources
// introduce taint, sanitizers clear it, sinks report or summarize, and
// in-program callees apply their summaries.
func (sc *fnScope) callTaint(call *ast.CallExpr) taintVal {
	// Type conversions propagate the operand.
	if tv, ok := sc.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return sc.evalTaint(call.Args[0])
		}
		return taintVal{}
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := sc.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				var t taintVal
				for _, a := range call.Args {
					t = t.join(sc.evalTaint(a))
				}
				return t
			case "copy":
				if len(call.Args) == 2 {
					sc.taintObj(sc.rootObj(call.Args[0]), sc.evalTaint(call.Args[1]))
				}
				return taintVal{}
			default:
				return taintVal{}
			}
		}
	}
	fn := sc.calleeOf(call)
	if fn == nil {
		// Dynamic call: conservatively derived from its inputs.
		var t taintVal
		for _, a := range call.Args {
			t = t.join(sc.evalTaint(a))
		}
		return t
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}

	// Sources.
	switch {
	case pkg == "time" && wallClockFuncs[fn.Name()]:
		return taintVal{srcs: srcClock}
	case (pkg == "math/rand" || pkg == "math/rand/v2") && globalRandFuncs[fn.Name()]:
		return taintVal{srcs: srcRand}
	case pkg == "maps" && (fn.Name() == "Keys" || fn.Name() == "Values"):
		return sc.argJoin(call).join(taintVal{srcs: srcMapOrder})
	}

	// Sanitizers: establishing a canonical order launders order taint.
	if isSanitizer(pkg, fn.Name()) {
		if len(call.Args) > 0 {
			if obj := sc.rootObj(call.Args[0]); obj != nil && !sc.sanitized[obj] {
				sc.sanitized[obj] = true
				sc.changed = true
			}
		}
		return taintVal{}
	}

	// Sinks.
	if desc, skip, ok := sinkForCallee(fn, call, sc.info); ok {
		for i, a := range call.Args {
			if i < skip {
				continue
			}
			t := sc.evalTaint(a)
			if t.srcs != 0 && sc.report != nil {
				sc.report(a.Pos(), t.srcs, desc)
			}
			if t.params != 0 {
				for p := 0; p < 64; p++ {
					if t.params&(1<<p) != 0 && sc.sum.noteSink(p, desc) {
						sc.changed = true
					}
				}
			}
		}
		return sc.argJoin(call)
	}

	// In-program callees: apply the callee's summary.
	if sum, ok := sc.eng.sums[funcKey(fn)]; ok {
		return sc.applySummary(call, fn, sum)
	}

	// Unknown externals: result derived from inputs; methods may fold
	// arguments into their receiver (strings.Builder.WriteString et al).
	t := sc.argJoin(call)
	if recv := recvExpr(call); recv != nil {
		t = t.join(sc.evalTaint(recv))
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			sc.taintObj(sc.rootObj(recv), sc.argJoin(call))
		}
	}
	return t
}

// argJoin joins the taint of every argument.
func (sc *fnScope) argJoin(call *ast.CallExpr) taintVal {
	var t taintVal
	for _, a := range call.Args {
		t = t.join(sc.evalTaint(a))
	}
	return t
}

// applySummary folds an in-program callee's summary into the call site:
// tainted arguments reaching sink-flowing parameters are reported (or
// recorded against this function's own parameters), and the return taint
// is assembled from the callee's return sources plus the arguments that
// flow to its return.
func (sc *fnScope) applySummary(call *ast.CallExpr, fn *types.Func, sum *fnSummary) taintVal {
	sig, _ := fn.Type().(*types.Signature)
	argTaint := func(i int) (taintVal, ast.Expr) {
		if sig != nil && sig.Recv() != nil {
			if i == 0 {
				r := recvExpr(call)
				return sc.evalTaint(r), r
			}
			i--
		}
		if i < len(call.Args) {
			return sc.evalTaint(call.Args[i]), call.Args[i]
		}
		return taintVal{}, nil
	}
	nparams := len(call.Args)
	if sig != nil && sig.Recv() != nil {
		nparams++
	}
	for i := 0; i < nparams && i < 64; i++ {
		if sum.sinkParams&(1<<i) == 0 {
			continue
		}
		t, at := argTaint(i)
		desc := sum.sinkDesc[i] + " (via " + fn.Name() + ")"
		if t.srcs != 0 && sc.report != nil && at != nil {
			sc.report(at.Pos(), t.srcs, desc)
		}
		if t.params != 0 {
			for p := 0; p < 64; p++ {
				if t.params&(1<<p) != 0 && sc.sum.noteSink(p, desc) {
					sc.changed = true
				}
			}
		}
	}
	out := taintVal{srcs: sum.retSrcs}
	for i := 0; i < nparams && i < 64; i++ {
		if sum.retParams&(1<<i) == 0 {
			continue
		}
		t, _ := argTaint(i)
		out = out.join(t)
	}
	return out
}

// isSanitizer reports whether pkg.name establishes a canonical order.
func isSanitizer(pkg, name string) bool {
	switch pkg {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc", "Sorted", "SortedFunc", "SortedStableFunc":
			return true
		}
	}
	return false
}

// sinkForCallee classifies calls that externalize data: encoders, artifact
// writers, bus publishes, and diagnostic renderers. skip is the number of
// leading non-data arguments (writers, filenames).
func sinkForCallee(fn *types.Func, call *ast.CallExpr, info *types.Info) (desc string, skip int, ok bool) {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "encoding/json":
		switch name {
		case "Marshal", "MarshalIndent":
			return "json." + name, 0, true
		case "Encode":
			return "json.Encoder.Encode", 0, true
		}
	case "fmt":
		switch name {
		case "Fprintf", "Fprint", "Fprintln":
			// Writes to stderr are operator logging, not replayable
			// artifacts.
			if len(call.Args) > 0 && isStderr(call.Args[0], info) {
				return "", 0, false
			}
			return "fmt." + name, 1, true
		}
	case "os":
		if name == "WriteFile" {
			return "os.WriteFile", 0, true
		}
	}
	if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil && name == "Encode" {
		if recvString(sig.Recv().Type()) == "(*Encoder)" {
			return "Encoder.Encode", 0, true
		}
	}
	switch name {
	case "Publish":
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
			return "bus publish", 0, true
		}
	case "WriteArtifact", "AtomicWriteFile":
		return name, 1, true
	case "Reportf":
		if sig, _ := fn.Type().(*types.Signature); sig != nil && sig.Recv() != nil {
			return "diagnostic renderer " + name, 0, true
		}
	}
	return "", 0, false
}

// isStderr reports whether the expression is the os.Stderr selector.
func isStderr(expr ast.Expr, info *types.Info) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "Stderr"
}
