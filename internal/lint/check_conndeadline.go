package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	register(&Check{
		Name: "conn-deadline",
		Doc:  "network Read/Write loop in internal/ library code with no deadline armed in the enclosing function",
		Run:  runConnDeadline,
	})
}

// deadlineSetters are the methods whose presence anywhere in a function
// counts as arming a deadline. A mention is enough — both a direct call
// and a method value handed to a helper (armDeadline(conn.SetReadDeadline,
// idle)) express the same intent.
var deadlineSetters = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// ioTransferFuncs are the io helpers that block on a reader or writer
// argument; a deadline-capable argument makes them equivalent to a direct
// conn.Read/conn.Write at the call site.
var ioTransferFuncs = map[string]bool{
	"ReadFull": true, "ReadAtLeast": true,
	"Copy": true, "CopyN": true, "CopyBuffer": true,
}

// runConnDeadline enforces the serving stack's liveness contract: a loop
// that reads from or writes to a deadline-capable connection (anything
// with a SetReadDeadline method — net.Conn and friends) can be pinned
// forever by a stalled or dribbling peer unless the enclosing function
// arms a deadline. The chaos harness proved this is not hypothetical: a
// one-byte-per-interval client holds a deadline-free reader goroutine for
// the life of the process. The check is per-function and syntactic on the
// arming side: any Set{Read,Write,}Deadline mention in the function —
// called directly or passed as a method value — counts, because the
// common idiom re-arms inside the loop via a helper. Test files are
// exempt; they pin liveness through test timeouts instead.
func runConnDeadline(pass *Pass) {
	if !pass.Internal {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if mentionsDeadlineSetter(fd.Body) {
				continue
			}
			reportUnboundedConnIO(pass, fd.Body)
		}
	}
}

// mentionsDeadlineSetter reports whether any selector in the body names a
// deadline setter, as a call or as a bare method value.
func mentionsDeadlineSetter(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && deadlineSetters[sel.Sel.Name] {
			found = true
			return false
		}
		return !found
	})
	return found
}

// reportUnboundedConnIO flags every deadline-capable Read/Write (direct or
// through an io transfer helper) that sits inside a for loop in body.
func reportUnboundedConnIO(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
		case *ast.RangeStmt:
			loopBody = loop.Body
		default:
			return true
		}
		ast.Inspect(loopBody, func(in ast.Node) bool {
			call, ok := in.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, conn := connIOCall(pass, call); conn != nil {
				pass.Reportf(call.Pos(),
					"%s on a deadline-capable connection inside a loop, but the function never arms Set{Read,Write,}Deadline; a stalled peer pins this goroutine forever", op)
			}
			return true
		})
		// The inner Inspect already covered nested loops' bodies.
		return false
	})
}

// connIOCall classifies call as blocking connection I/O: a Read/Write
// method on a deadline-capable value, or an io transfer helper with a
// deadline-capable argument. It returns a description and the connection
// expression, or "" and nil.
func connIOCall(pass *Pass, call *ast.CallExpr) (string, ast.Expr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if (name == "Read" || name == "Write") && deadlineCapable(pass, sel.X) {
			return name, sel.X
		}
	}
	if pkg, name := calleePkgFunc(pass, call); pkg == "io" && ioTransferFuncs[name] {
		for _, arg := range call.Args {
			if deadlineCapable(pass, arg) {
				return "io." + name, arg
			}
		}
	}
	return "", nil
}

// deadlineCapable reports whether expr's type has a SetReadDeadline
// method — the duck-typed signature of net.Conn and every stdlib
// connection type.
func deadlineCapable(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(tv.Type, true, pass.Pkg, "SetReadDeadline")
	_, isFunc := obj.(*types.Func)
	return isFunc
}
