package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// module locates the enclosing Go module.
type module struct {
	Root string // absolute directory containing go.mod
	Path string // module path declared in go.mod
}

// findModule walks up from dir to the nearest go.mod.
func findModule(dir string) (module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return module{}, err
	}
	for cur := abs; ; {
		data, err := os.ReadFile(filepath.Join(cur, "go.mod"))
		if err == nil {
			path, err := modulePath(data)
			if err != nil {
				return module{}, fmt.Errorf("%s/go.mod: %w", cur, err)
			}
			return module{Root: cur, Path: path}, nil
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return module{}, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		cur = parent
	}
}

// modulePath extracts the module declaration from go.mod contents.
func modulePath(gomod []byte) (string, error) {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module declaration")
}

// packageDir is one directory of Go source, split into the three compile
// units the go tool recognises.
type packageDir struct {
	Dir        string // absolute
	ImportPath string
	Name       string // package name of the base unit

	Base  []*ast.File // non-test files
	Tests []*ast.File // in-package *_test.go
	XTest []*ast.File // external (package foo_test) *_test.go

	baseImports []string // module-internal imports of the base unit
}

// discover walks the module tree and parses every package directory.
// testdata, hidden, and underscore-prefixed directories are skipped,
// mirroring the go tool's rules.
func discover(fset *token.FileSet, mod module) (map[string]*packageDir, error) {
	dirs := make(map[string]*packageDir)
	err := filepath.WalkDir(mod.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != mod.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(mod.Root, dir)
		if err != nil {
			return err
		}
		importPath := mod.Path
		if rel != "." {
			importPath = mod.Path + "/" + filepath.ToSlash(rel)
		}
		pd := dirs[importPath]
		if pd == nil {
			pd = &packageDir{Dir: dir, ImportPath: importPath}
			dirs[importPath] = pd
		}
		return pd.addFile(fset, path, mod)
	})
	if err != nil {
		return nil, err
	}
	// Drop directories with no buildable Go files (e.g. doc-only dirs).
	for path, pd := range dirs {
		if len(pd.Base) == 0 && len(pd.Tests) == 0 && len(pd.XTest) == 0 {
			delete(dirs, path)
		}
	}
	return dirs, nil
}

// addFile parses one source file into the right compile unit.
func (pd *packageDir) addFile(fset *token.FileSet, path string, mod module) error {
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return fmt.Errorf("lint: parse %s: %w", path, err)
	}
	name := file.Name.Name
	switch {
	case strings.HasSuffix(path, "_test.go") && strings.HasSuffix(name, "_test"):
		pd.XTest = append(pd.XTest, file)
	case strings.HasSuffix(path, "_test.go"):
		pd.Tests = append(pd.Tests, file)
	default:
		pd.Base = append(pd.Base, file)
		pd.Name = name
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == mod.Path || strings.HasPrefix(p, mod.Path+"/") {
				pd.baseImports = append(pd.baseImports, p)
			}
		}
	}
	return nil
}

// loader type-checks module packages on demand, resolving module-internal
// imports from the discovered tree and everything else through the
// toolchain's export data (with a from-source fallback).
type loader struct {
	fset    *token.FileSet
	mod     module
	dirs    map[string]*packageDir
	cache   map[string]*types.Package
	loading map[string]bool
	std     types.Importer
	stdSrc  types.Importer
}

func newLoader(fset *token.FileSet, mod module, dirs map[string]*packageDir) *loader {
	return &loader{
		fset:    fset,
		mod:     mod,
		dirs:    dirs,
		cache:   make(map[string]*types.Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "gc", nil),
		stdSrc:  importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer over the module graph.
func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.mod.Path || strings.HasPrefix(path, l.mod.Path+"/") {
		pd, ok := l.dirs[path]
		if !ok || len(pd.Base) == 0 {
			return nil, fmt.Errorf("lint: no package %s in module", path)
		}
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		pkg, _, err := l.check(path, pd.Base)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		if pkg, srcErr := l.stdSrc.Import(path); srcErr == nil {
			return pkg, nil
		}
		return nil, fmt.Errorf("lint: import %s: %w", path, err)
	}
	return pkg, nil
}

// check type-checks one compile unit and returns the package with full
// expression/object information for the checks to consult.
func (l *loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: type-check %s: %w", path, errs[0])
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return pkg, info, nil
}

// topoOrder returns the discovered import paths so that every package
// appears after all of its module-internal dependencies.
func topoOrder(dirs map[string]*packageDir) []string {
	paths := make([]string, 0, len(dirs))
	for p := range dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	order := make([]string, 0, len(paths))
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string)
	visit = func(p string) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		if pd, ok := dirs[p]; ok {
			deps := append([]string(nil), pd.baseImports...)
			sort.Strings(deps)
			for _, dep := range deps {
				if state[dep] != 1 { // tolerate cycles; type-check reports them
					visit(dep)
				}
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}
