package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata expected.txt goldens")

// goldenCases pairs each testdata package with the checks it exercises.
// Every check has at least one positive (bad) and one negative (good) case.
var goldenCases = []struct {
	dir      string   // under testdata/
	checks   []string // nil means the full registry
	internal bool
}{
	{dir: "floatcmp/bad", checks: []string{"floatcmp"}, internal: true},
	{dir: "floatcmp/good", checks: []string{"floatcmp"}, internal: true},
	{dir: "nondeterminism/bad", checks: []string{"nondeterminism"}, internal: true},
	{dir: "nondeterminism/good", checks: []string{"nondeterminism"}, internal: true},
	{dir: "nondeterminism/notinternal", checks: []string{"nondeterminism"}, internal: false},
	{dir: "unchecked-err/bad", checks: []string{"unchecked-err"}, internal: true},
	{dir: "unchecked-err/good", checks: []string{"unchecked-err"}, internal: true},
	{dir: "mutexcopy-lite/bad", checks: []string{"mutexcopy-lite"}, internal: true},
	{dir: "mutexcopy-lite/good", checks: []string{"mutexcopy-lite"}, internal: true},
	{dir: "obs-nilsafe/bad", checks: []string{"obs-nilsafe"}, internal: true},
	{dir: "obs-nilsafe/good", checks: []string{"obs-nilsafe"}, internal: true},
	{dir: "exported-doc/bad", checks: []string{"exported-doc"}, internal: true},
	{dir: "exported-doc/good", checks: []string{"exported-doc"}, internal: true},
	{dir: "seeded-rand/bad", checks: []string{"seeded-rand"}, internal: true},
	{dir: "seeded-rand/good", checks: []string{"seeded-rand"}, internal: true},
	{dir: "atomic-artifact/bad", checks: []string{"atomic-artifact"}, internal: true},
	{dir: "atomic-artifact/good", checks: []string{"atomic-artifact"}, internal: true},
	{dir: "adapt-journal/bad", checks: []string{"adapt-journal"}, internal: true},
	{dir: "adapt-journal/good", checks: []string{"adapt-journal"}, internal: true},
	{dir: "conn-deadline/bad", checks: []string{"conn-deadline"}, internal: true},
	{dir: "conn-deadline/good", checks: []string{"conn-deadline"}, internal: true},
	{dir: "directive/suppressed", internal: true},
	{dir: "directive/partial", internal: true},
	{dir: "directive/malformed", internal: true},
	// The graph-powered checks run on internal=false fixtures on purpose:
	// the interprocedural walks do not depend on the internal heuristics,
	// and the determinism-taint bad case doubles as the acceptance test
	// that the old syntactic nondeterminism check misses laundered leaks.
	{dir: "determinism-taint/bad", checks: []string{"determinism-taint"}, internal: false},
	{dir: "determinism-taint/good", checks: []string{"determinism-taint"}, internal: false},
	{dir: "hotpath-alloc/bad", checks: []string{"hotpath-alloc"}, internal: false},
	{dir: "hotpath-alloc/good", checks: []string{"hotpath-alloc"}, internal: false},
	{dir: "lock-discipline/bad", checks: []string{"lock-discipline"}, internal: false},
	{dir: "lock-discipline/good", checks: []string{"lock-discipline"}, internal: false},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			findings, err := RunDir(dir, tc.checks, tc.internal)
			if err != nil {
				t.Fatalf("RunDir(%s): %v", dir, err)
			}
			var buf bytes.Buffer
			if err := WriteText(&buf, findings); err != nil {
				t.Fatal(err)
			}
			got := buf.String()

			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestGoldenPolarity pins the corpus's intent: every bad/ package yields at
// least one finding, every good/ package yields none, so a regression that
// silences a check cannot hide behind a stale golden.
func TestGoldenPolarity(t *testing.T) {
	for _, tc := range goldenCases {
		dir := filepath.Join("testdata", tc.dir)
		findings, err := RunDir(dir, tc.checks, tc.internal)
		if err != nil {
			t.Fatalf("RunDir(%s): %v", dir, err)
		}
		base := filepath.Base(tc.dir)
		switch base {
		case "bad", "malformed", "partial":
			if len(findings) == 0 {
				t.Errorf("%s: want at least one finding, got none", tc.dir)
			}
		case "good", "suppressed", "notinternal":
			if len(findings) != 0 {
				t.Errorf("%s: want no findings, got %d:\n%v", tc.dir, len(findings), findings)
			}
		}
	}
}

// TestSelfClean runs the full suite over the module itself: the repo must
// lint clean at all times, since CI gates on it.
func TestSelfClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(Options{Dir: root})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != 0 {
		var sb strings.Builder
		for _, f := range findings {
			sb.WriteString(f.String())
			sb.WriteString("\n")
		}
		t.Errorf("module is not lint-clean (%d findings):\n%s", len(findings), sb.String())
	}
}

func TestUnknownCheck(t *testing.T) {
	if _, err := RunDir(filepath.Join("testdata", "floatcmp", "good"), []string{"no-such-check"}, true); err == nil {
		t.Fatal("want error for unknown check name, got nil")
	}
}
