package lint

import (
	"go/ast"
)

func init() {
	register(&Check{
		Name: "exported-doc",
		Doc:  "exported identifier in an internal/ package without a doc comment",
		Run:  runExportedDoc,
	})
}

// runExportedDoc requires doc comments on exported identifiers in internal/
// library packages: exported funcs, methods whose receiver type is itself
// exported, and exported type/var/const specs. A doc comment on a grouped
// var/const/type block covers every spec inside it — the repo documents
// enumerations with one block comment. Test files are exempt.
func runExportedDoc(pass *Pass) {
	if !pass.Internal {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
}

func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	kind := "function"
	if d.Recv != nil {
		kind = "method"
		// Methods on unexported types are internal plumbing.
		if _, typeName := pointerReceiver(d); typeName != "" && !ast.IsExported(typeName) {
			return
		}
		if typeName := valueReceiverType(d); typeName != "" && !ast.IsExported(typeName) {
			return
		}
	}
	pass.Reportf(d.Name.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
}

func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				pass.Reportf(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(name.Pos(), "exported %s has no doc comment", name.Name)
				}
			}
		}
	}
}

// valueReceiverType returns the receiver type name of a value-receiver
// method, or "".
func valueReceiverType(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	base := fd.Recv.List[0].Type
	if idx, ok := base.(*ast.IndexExpr); ok {
		base = idx.X
	}
	if id, ok := base.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
