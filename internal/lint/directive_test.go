package lint

import (
	"go/parser"
	"go/token"
	"testing"
)

func TestDirectiveText(t *testing.T) {
	cases := []struct {
		raw  string
		want string
		ok   bool
	}{
		{"//lint:ignore floatcmp reason", "floatcmp reason", true},
		{"//lint:ignore   spaced   out ", "spaced   out", true},
		{"//lint:ignore", "", true},
		{"// lint:ignore floatcmp reason", "", false}, // space before prefix
		{"//nolint:floatcmp", "", false},
		{"/*lint:ignore floatcmp reason*/", "", false}, // block comments not honoured
		{"// plain comment", "", false},
	}
	for _, tc := range cases {
		got, ok := directiveText(tc.raw)
		if got != tc.want || ok != tc.ok {
			t.Errorf("directiveText(%q) = (%q, %v), want (%q, %v)", tc.raw, got, ok, tc.want, tc.ok)
		}
	}
}

func TestDirectiveMatches(t *testing.T) {
	cases := []struct {
		checks string
		check  string
		want   bool
	}{
		{"floatcmp", "floatcmp", true},
		{"floatcmp", "nondeterminism", false},
		{"floatcmp,unchecked-err", "unchecked-err", true},
		{"floatcmp,unchecked-err", "mutexcopy-lite", false},
		{"all", "anything", true},
		{"float", "floatcmp", false}, // no prefix matching
	}
	for _, tc := range cases {
		d := directive{checks: tc.checks}
		if got := d.matches(tc.check); got != tc.want {
			t.Errorf("directive{%q}.matches(%q) = %v, want %v", tc.checks, tc.check, got, tc.want)
		}
	}
}

const directiveScopeSrc = `package p

//lint:ignore floatcmp covers the whole function below
func f(a, b float64) bool {
	if a > b {
		return true
	}
	return a == b
}

func g() {
	x := 1 //lint:ignore nondeterminism trailing covers only this line
	_ = x
}
`

func TestDirectiveScope(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "scope.go", directiveScopeSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var malformed int
	idx := parseDirectives(fset, file, func(token.Pos, string, string) { malformed++ })
	if malformed != 0 {
		t.Fatalf("got %d malformed reports, want 0", malformed)
	}
	if len(idx.directives) != 2 {
		t.Fatalf("got %d directives, want 2", len(idx.directives))
	}

	// Own-line directive at line 3 covers the FuncDecl spanning lines 4-9.
	own := idx.directives[0]
	if own.fromLine != 3 || own.toLine != 9 {
		t.Errorf("own-line scope = [%d,%d], want [3,9]", own.fromLine, own.toLine)
	}
	if !idx.suppresses("floatcmp", 8) {
		t.Error("own-line directive should suppress inside the function body")
	}
	if idx.suppresses("floatcmp", 10) {
		t.Error("own-line directive must not leak past the function end")
	}
	if idx.suppresses("nondeterminism", 8) {
		t.Error("own-line directive must not suppress other checks")
	}

	// Trailing directive at line 12 covers only its own line.
	trailing := idx.directives[1]
	if trailing.fromLine != 12 || trailing.toLine != 12 {
		t.Errorf("trailing scope = [%d,%d], want [12,12]", trailing.fromLine, trailing.toLine)
	}
	if idx.suppresses("nondeterminism", 13) {
		t.Error("trailing directive must not cover the following line")
	}
}

func TestDirectiveMalformedReported(t *testing.T) {
	src := `package p

//lint:ignore floatcmp
func f() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "bad.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var reports []string
	idx := parseDirectives(fset, file, func(_ token.Pos, check, _ string) {
		reports = append(reports, check)
	})
	if len(reports) != 1 || reports[0] != "directive" {
		t.Fatalf("got reports %v, want one under check %q", reports, "directive")
	}
	if len(idx.directives) != 0 {
		t.Fatalf("malformed directive must not enter the index, got %d", len(idx.directives))
	}
}
