package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Check is one named analysis over a type-checked package.
type Check struct {
	// Name is the short kebab-case identifier used in reports and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description shown by cqmlint -checks.
	Doc string
	// Run inspects the package held by pass and reports findings. It is
	// nil for whole-program checks.
	Run func(pass *Pass)
	// Graph, when non-nil, marks an interprocedural check: it runs once
	// over the whole program (every unit plus the call graph) after the
	// per-package phase.
	Graph func(gp *GraphPass)
}

// Pass hands one type-checked package to a check.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// PkgPath is the import path being analyzed (e.g. cqm/internal/stat).
	PkgPath string
	// Internal marks library packages under internal/ — checks that only
	// apply to library code (nondeterminism, exported-doc) key off this.
	Internal bool

	check  *Check
	report func(Finding)
	relpos func(token.Pos) (file string, line, col int)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	file, line, col := p.relpos(pos)
	p.report(Finding{
		File:    file,
		Line:    line,
		Col:     col,
		Check:   p.check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos sits in a *_test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// registry is the fixed set of checks, keyed by name.
var registry = map[string]*Check{}

// register installs a check at package init time; duplicate names are a
// programming error.
func register(c *Check) {
	if _, dup := registry[c.Name]; dup {
		panic("lint: duplicate check " + c.Name)
	}
	registry[c.Name] = c
}

// Checks returns every registered check in name order.
func Checks() []*Check {
	out := make([]*Check, 0, len(registry))
	for _, c := range registry {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckByName returns the named check, or nil.
func CheckByName(name string) *Check {
	return registry[name]
}
