package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

func init() {
	register(&Check{
		Name: "atomic-artifact",
		Doc:  "direct os.WriteFile of a .json model artifact outside internal/ckpt",
		Run:  runAtomicArtifact,
	})
}

// runAtomicArtifact guards the durability contract of model artifacts: a
// bare os.WriteFile truncates in place, so a crash mid-write leaves a torn
// .json file that the loader can only reject, losing the previous good
// artifact with it. Every .json artifact write outside internal/ckpt must
// go through ckpt.WriteArtifact or ckpt.AtomicWriteFile (write-temp +
// fsync + rename), which is why the ckpt package itself and test files are
// exempt. The check fires on os.WriteFile calls whose path expression
// carries a ".json" string literal — the signature of a hard-coded
// artifact name.
func runAtomicArtifact(pass *Pass) {
	if strings.HasSuffix(pass.PkgPath, "internal/ckpt") {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := calleePkgFunc(pass, call)
			if pkg != "os" || name != "WriteFile" || len(call.Args) == 0 {
				return true
			}
			if !containsJSONLiteral(call.Args[0]) {
				return true
			}
			pass.Reportf(call.Pos(), "os.WriteFile of a .json artifact can tear on crash; write it through ckpt.WriteArtifact or ckpt.AtomicWriteFile")
			return true
		})
	}
}

// containsJSONLiteral reports whether any string literal inside the
// expression mentions ".json".
func containsJSONLiteral(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if strings.Contains(lit.Value, ".json") {
			found = true
		}
		return !found
	})
	return found
}
