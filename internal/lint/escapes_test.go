package lint

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseDiagnostic(t *testing.T) {
	cases := []struct {
		in   string
		file string
		line int
		text string
		ok   bool
	}{
		{"internal/core/measure.go:42:10: make([]float64, n) escapes to heap", "internal/core/measure.go", 42, "make([]float64, n) escapes to heap", true},
		{"a.go:7:3: moved to heap: x", "a.go", 7, "moved to heap: x", true},
		{"# cqm/internal/core", "", 0, "", false},
		{"a.go:notanum:3: text", "", 0, "", false},
		{"a.go:7:notanum: text", "", 0, "", false},
		{"no colons here", "", 0, "", false},
		{"", "", 0, "", false},
	}
	for _, tc := range cases {
		file, line, text, ok := parseDiagnostic(tc.in)
		if ok != tc.ok || file != tc.file || line != tc.line || text != tc.text {
			t.Errorf("parseDiagnostic(%q) = (%q, %d, %q, %v), want (%q, %d, %q, %v)",
				tc.in, file, line, text, ok, tc.file, tc.line, tc.text, tc.ok)
		}
	}
}

func TestDiffEscapes(t *testing.T) {
	e := func(file, fn, text string, n int) EscapeEntry {
		return EscapeEntry{File: file, Func: fn, Text: text, Count: n}
	}
	budget := []EscapeEntry{
		e("a.go", "p.F", "x escapes to heap", 2),
		e("a.go", "p.G", "moved to heap: y", 1),
		e("b.go", "p.H", "z escapes to heap", 3),
	}

	t.Run("unchanged", func(t *testing.T) {
		reg, imp := diffEscapes(budget, budget)
		if len(reg) != 0 || len(imp) != 0 {
			t.Errorf("identical sets: reg=%v imp=%v", reg, imp)
		}
	})

	t.Run("new site and grown count regress", func(t *testing.T) {
		cur := []EscapeEntry{
			e("a.go", "p.F", "x escapes to heap", 3), // grew 2→3
			e("a.go", "p.G", "moved to heap: y", 1),
			e("b.go", "p.H", "z escapes to heap", 3),
			e("c.go", "p.New", "w escapes to heap", 1), // new site
		}
		reg, imp := diffEscapes(budget, cur)
		if len(imp) != 0 {
			t.Errorf("unexpected improvements: %v", imp)
		}
		if len(reg) != 2 {
			t.Fatalf("want 2 regressions, got %v", reg)
		}
		if !strings.Contains(reg[0], "p.F") || !strings.Contains(reg[0], "3 escape(s), budget 2") {
			t.Errorf("grown count rendered wrong: %q", reg[0])
		}
		if !strings.Contains(reg[1], "c.go") || !strings.Contains(reg[1], "budget 0") {
			t.Errorf("new site rendered wrong: %q", reg[1])
		}
	})

	t.Run("dropped and shrunk improve", func(t *testing.T) {
		cur := []EscapeEntry{
			e("a.go", "p.F", "x escapes to heap", 2),
			e("b.go", "p.H", "z escapes to heap", 1), // shrank 3→1
			// p.G gone entirely.
		}
		reg, imp := diffEscapes(budget, cur)
		if len(reg) != 0 {
			t.Errorf("unexpected regressions: %v", reg)
		}
		if len(imp) != 2 {
			t.Fatalf("want 2 improvements, got %v", imp)
		}
		if !strings.Contains(imp[0], "p.G") || !strings.Contains(imp[0], "now 0, budget 1") {
			t.Errorf("dropped site rendered wrong: %q", imp[0])
		}
		if !strings.Contains(imp[1], "p.H") || !strings.Contains(imp[1], "now 1, budget 3") {
			t.Errorf("shrunk count rendered wrong: %q", imp[1])
		}
	})

	t.Run("changed text is a move not a wash", func(t *testing.T) {
		cur := []EscapeEntry{
			e("a.go", "p.F", "x2 escapes to heap", 2),
			e("a.go", "p.G", "moved to heap: y", 1),
			e("b.go", "p.H", "z escapes to heap", 3),
		}
		reg, imp := diffEscapes(budget, cur)
		if len(reg) != 1 || len(imp) != 1 {
			t.Errorf("renamed escape: reg=%v imp=%v, want one of each", reg, imp)
		}
	})

	t.Run("empty budget flags everything", func(t *testing.T) {
		reg, imp := diffEscapes(nil, budget)
		if len(reg) != len(budget) || len(imp) != 0 {
			t.Errorf("nil budget: reg=%v imp=%v", reg, imp)
		}
	})
}

// TestEscapeBudgetRoundTrip pins the on-disk shape: write, read back,
// compare.
func TestEscapeBudgetRoundTrip(t *testing.T) {
	path := t.TempDir() + "/ESCAPES.json"
	entries := []EscapeEntry{
		{File: "a.go", Func: "p.F", Text: "x escapes to heap", Count: 2},
	}
	if err := writeEscapeBudget(path, entries); err != nil {
		t.Fatal(err)
	}
	got, err := readEscapeBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("round trip: got %v, want %v", got, entries)
	}
}

// TestReadEscapeBudgetMissing treats a missing file as an empty budget.
func TestReadEscapeBudgetMissing(t *testing.T) {
	got, err := readEscapeBudget(t.TempDir() + "/nope.json")
	if err != nil || got != nil {
		t.Errorf("missing budget: got (%v, %v), want (nil, nil)", got, err)
	}
}
