package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	register(&Check{
		Name: "nondeterminism",
		Doc:  "global math/rand, time.Now, or map-order-dependent output in internal/ library code",
		Run:  runNondeterminism,
	})
}

// globalRandFuncs are the math/rand (and math/rand/v2) top-level functions
// that draw from the shared, unseedable-for-reproduction global source.
// Constructors (New, NewSource, NewPCG, …) are the deterministic idiom and
// stay legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// wallClockFuncs are the time functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// runNondeterminism enforces that internal/ library packages stay
// reproducible: every random draw flows through an explicitly seeded
// *rand.Rand, no library path reads the wall clock, and nothing prints
// while ranging over a map. Determinism here is load-bearing — training
// runs must replay bit-identically for the paper reproduction and for
// resumable experiment pipelines. Test files are exempt (they are not
// library code), as are cmd/ and examples/, where wall-clock use is the
// point.
func runNondeterminism(pass *Pass) {
	if !pass.Internal {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkg, name := calleePkgFunc(pass, n)
				switch {
				case (pkg == "math/rand" || pkg == "math/rand/v2") && globalRandFuncs[name]:
					pass.Reportf(n.Pos(), "global rand.%s uses the shared source; thread an explicit rand.New(rand.NewSource(seed))", name)
				case pkg == "time" && wallClockFuncs[name]:
					pass.Reportf(n.Pos(), "time.%s reads the wall clock in library code; take the time as a parameter", name)
				}
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n)
			}
			return true
		})
	}
}

// calleePkgFunc resolves a call to (package path, function name) when the
// callee is a package-level function reached through a selector; otherwise
// it returns empty strings.
func calleePkgFunc(pass *Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj, ok := pass.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return "", ""
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return "", ""
	}
	// Only package-qualified calls (pkg.F), not method calls.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pass.Info.Uses[id].(*types.PkgName); isPkg {
			return obj.Pkg().Path(), obj.Name()
		}
	}
	return "", ""
}

// checkMapRangeOutput flags fmt print/format calls inside a range over a
// map: iteration order is randomized, so anything emitted or concatenated
// per-iteration differs run to run. The benign pattern — collect keys,
// sort, then emit — never prints inside the map range itself.
func checkMapRangeOutput(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := calleePkgFunc(pass, call); pkg == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s inside range over map emits in randomized order; sort keys first", name)
		}
		return true
	})
}
