package lint

import "go/ast"

func init() {
	register(&Check{
		Name: "seeded-rand",
		Doc:  "rand.New whose source is not an inline explicit-seed constructor in internal/ library code",
		Run:  runSeededRand,
	})
}

// seededSourceCtors are the math/rand (and math/rand/v2) source
// constructors that take an explicit seed, making the RNG's provenance
// visible at the construction site.
var seededSourceCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

// runSeededRand enforces the fault harness's determinism contract at its
// root: every *rand.Rand in internal/ library code must be constructed as
// rand.New(rand.NewSource(seed)) (or a v2 seeded constructor) so the seed
// is visible right where the generator is born. A rand.New(src) whose
// source arrives through a variable or call hides the seed's origin — the
// reader cannot tell a reproducible stream from an ambient one without
// chasing the dataflow, and refactors silently break replayability. Test
// files are exempt.
func runSeededRand(pass *Pass) {
	if !pass.Internal {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := calleePkgFunc(pass, call)
			if (pkg != "math/rand" && pkg != "math/rand/v2") || name != "New" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			if inner, ok := call.Args[0].(*ast.CallExpr); ok {
				if ipkg, iname := calleePkgFunc(pass, inner); ipkg == pkg && seededSourceCtors[iname] {
					return true
				}
			}
			pass.Reportf(call.Pos(), "rand.New with an opaque source hides the seed; construct rand.New(rand.NewSource(seed)) inline so reproducibility is auditable")
			return true
		})
	}
}
