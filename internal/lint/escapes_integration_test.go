package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunEscapesRatchet drives the full -escapes pipeline against a
// scratch module whose one //cqm:hotpath function forces a heap escape:
// -update-escapes records the baseline, a clean run passes, and wiping
// the budget makes the same escape read as an undeclared regression —
// the ratchet CI gates on.
func TestRunEscapesRatchet(t *testing.T) {
	if _, err := os.Stat(filepath.Join("..", "..", "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	dir := t.TempDir()
	writeFile := func(rel, content string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module escmod\n\ngo 1.24\n")
	writeFile("pkg/esc.go", `// Package esc forces one escape on a hot path.
package esc

// Leak returns a pointer to a local, forcing it onto the heap.
//
//cqm:hotpath
func Leak() *int {
	x := 42
	return &x
}
`)

	res, err := RunEscapes(dir, true)
	if err != nil {
		t.Fatalf("RunEscapes(update): %v", err)
	}
	var found bool
	for _, e := range res.Entries {
		if e.File == "pkg/esc.go" && strings.Contains(e.Text, "moved to heap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("baseline did not attribute the escape to pkg/esc.go: %v", res.Entries)
	}

	res, err = RunEscapes(dir, false)
	if err != nil {
		t.Fatalf("RunEscapes(check): %v", err)
	}
	if len(res.Regressions) != 0 || len(res.Improvements) != 0 {
		t.Errorf("clean run against fresh baseline: reg=%v imp=%v", res.Regressions, res.Improvements)
	}

	// An empty budget turns the same escape into an undeclared regression.
	if err := writeEscapeBudget(filepath.Join(dir, EscapeBudgetFile), nil); err != nil {
		t.Fatal(err)
	}
	res, err = RunEscapes(dir, false)
	if err != nil {
		t.Fatalf("RunEscapes(regression): %v", err)
	}
	if len(res.Regressions) == 0 {
		t.Errorf("undeclared hot-path escape did not regress; entries=%v", res.Entries)
	}
}
