package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	register(&Check{
		Name: "unchecked-err",
		Doc:  "call discards an error result; handle it or assign it to _ deliberately",
		Run:  runUncheckedErr,
	})
}

// runUncheckedErr flags statement-position calls whose error result
// vanishes. Assigning the error to _ is an explicit, greppable discard and
// stays legal; silently dropping it is not.
//
// Scope decisions for this tree:
//   - *_test.go files are exempt: the test harness surfaces failures.
//   - defer/go statements are exempt; the repo treats deferred cleanup as
//     best-effort (writers that must flush use explicit Close paths).
//   - fmt is exempt (terminal writes), as are strings.Builder and
//     bytes.Buffer methods, which are documented never to fail.
func runUncheckedErr(pass *Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || exemptCallee(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s discards an error; check it or assign to _", calleeName(call))
			return true
		})
	}
}

// returnsError reports whether call's type includes an error result.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptCallee applies the infallible-writer allowlist.
func exemptCallee(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, _ := calleePkgFunc(pass, call); pkg == "fmt" {
		return true
	}
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// calleeName renders a short name for the callee, for the message.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	default:
		return "call"
	}
}
