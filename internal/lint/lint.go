// Package lint implements cqmlint, the repo-specific static-analysis
// suite for the cqm module. It is built only on the standard library's
// go/ast, go/parser, go/token, and go/types: the driver discovers every
// package in the module, type-checks them in dependency order, and runs a
// registry of checks tuned to this codebase's invariants (float
// comparison hygiene, determinism of library packages, error handling,
// lock copying, the obs nil-guard idiom, and doc coverage).
//
// Individual findings can be waived in place with a directive comment on
// the offending line or the line above:
//
//	//lint:ignore check-name reason why this occurrence is safe
//
// The reason is mandatory; a malformed directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// Options configures one analyzer run.
type Options struct {
	// Dir is the directory from which the enclosing module is located.
	// Empty means the current directory.
	Dir string
	// Patterns restricts which packages are analyzed, relative to the
	// module root: "./..." (everything, the default), "./sub/..."
	// (subtree), or "./sub" (exact package directory).
	Patterns []string
	// Checks restricts which checks run; empty means all registered.
	Checks []string
}

// Run loads the module around opts.Dir and applies the configured checks
// to every package matching opts.Patterns. It returns the sorted findings;
// err is non-nil only for load/usage failures (findings are not errors).
func Run(opts Options) ([]Finding, error) {
	dir := opts.Dir
	if dir == "" {
		dir = "."
	}
	mod, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	dirs, err := discover(fset, mod)
	if err != nil {
		return nil, err
	}
	match, err := compilePatterns(mod, opts.Patterns)
	if err != nil {
		return nil, err
	}
	checks, err := selectChecks(opts.Checks)
	if err != nil {
		return nil, err
	}
	ld := newLoader(fset, mod, dirs)
	relpos := relposFunc(fset, mod.Root)
	var findings []Finding
	var units []*unit
	directives := make(map[string]*directiveIndex)
	matchedDirs := make(map[string]bool)
	for _, path := range topoOrder(dirs) {
		pd, ok := dirs[path]
		if !ok {
			continue
		}
		matched := match(path)
		if matched {
			if rel, err := filepath.Rel(mod.Root, pd.Dir); err == nil {
				matchedDirs[filepath.ToSlash(rel)] = true
			}
		}
		// Every package is type-checked and collected so the call graph
		// spans the whole module; per-package findings are only reported
		// for matched packages.
		us, fs, err := runPackage(ld, pd, checks, matched, relpos, directives)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
		findings = append(findings, fs...)
	}
	prog := newProgram(fset, units, relpos)
	for _, f := range runGraphChecks(prog, checks) {
		dir := filepath.ToSlash(filepath.Dir(f.File))
		if !matchedDirs[dir] {
			continue
		}
		if idx, ok := directives[f.File]; ok && idx.suppresses(f.Check, f.Line) {
			continue
		}
		findings = append(findings, f)
	}
	SortFindings(findings)
	return findings, nil
}

// relposFunc renders positions relative to root so findings are stable
// across machines.
func relposFunc(fset *token.FileSet, root string) func(token.Pos) (string, int, int) {
	return func(pos token.Pos) (string, int, int) {
		p := fset.Position(pos)
		file := p.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		return file, p.Line, p.Column
	}
}

// RunDir analyzes the single package rooted at dir (plus its external test
// package, if any) outside any module context — the entry point the golden
// testdata corpus uses. internal toggles the internal-library scoping some
// checks apply; findings use paths relative to dir.
func RunDir(dir string, checkNames []string, internal bool) ([]Finding, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	checks, err := selectChecks(checkNames)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := module{Root: abs, Path: "example.test/pkg"}
	pd := &packageDir{Dir: abs, ImportPath: mod.Path}
	entries, err := filepath.Glob(filepath.Join(abs, "*.go"))
	if err != nil {
		return nil, err
	}
	for _, path := range entries {
		if err := pd.addFile(fset, path, mod); err != nil {
			return nil, err
		}
	}
	if len(pd.Base) == 0 && len(pd.Tests) == 0 && len(pd.XTest) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	ld := newLoader(fset, mod, map[string]*packageDir{mod.Path: pd})
	relpos := relposFunc(fset, abs)
	directives := make(map[string]*directiveIndex)
	units, findings, err := runPackageScoped(ld, pd, checks, internal, true, relpos, directives)
	if err != nil {
		return nil, err
	}
	prog := newProgram(fset, units, relpos)
	for _, f := range runGraphChecks(prog, checks) {
		if idx, ok := directives[f.File]; ok && idx.suppresses(f.Check, f.Line) {
			continue
		}
		findings = append(findings, f)
	}
	SortFindings(findings)
	return findings, nil
}

// ProgramDir loads the single package rooted at dir like RunDir and
// returns the whole-program view — the call-graph golden tests consume
// its Dump.
func ProgramDir(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := module{Root: abs, Path: "example.test/pkg"}
	pd := &packageDir{Dir: abs, ImportPath: mod.Path}
	entries, err := filepath.Glob(filepath.Join(abs, "*.go"))
	if err != nil {
		return nil, err
	}
	for _, path := range entries {
		if err := pd.addFile(fset, path, mod); err != nil {
			return nil, err
		}
	}
	if len(pd.Base)+len(pd.Tests)+len(pd.XTest) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	ld := newLoader(fset, mod, map[string]*packageDir{mod.Path: pd})
	relpos := relposFunc(fset, abs)
	units, _, err := runPackageScoped(ld, pd, nil, true, false, relpos, make(map[string]*directiveIndex))
	if err != nil {
		return nil, err
	}
	return newProgram(fset, units, relpos), nil
}

// runPackage analyzes one discovered package directory: the base unit
// augmented with its in-package tests, then the external test unit.
func runPackage(ld *loader, pd *packageDir, checks []*Check, matched bool, relpos func(token.Pos) (string, int, int), directives map[string]*directiveIndex) ([]*unit, []Finding, error) {
	internal := strings.Contains(pd.ImportPath, "/internal/") ||
		strings.HasSuffix(pd.ImportPath, "/internal")
	return runPackageScoped(ld, pd, checks, internal, matched, relpos, directives)
}

func runPackageScoped(ld *loader, pd *packageDir, checks []*Check, internal, matched bool, relpos func(token.Pos) (string, int, int), directives map[string]*directiveIndex) ([]*unit, []Finding, error) {
	var findings []Finding
	var units []*unit
	if len(pd.Base)+len(pd.Tests) > 0 {
		files := append(append([]*ast.File(nil), pd.Base...), pd.Tests...)
		u, fs, err := runUnit(ld, pd.ImportPath, files, checks, internal, matched, relpos, directives)
		if err != nil {
			return nil, nil, err
		}
		units = append(units, u)
		findings = append(findings, fs...)
	}
	if len(pd.XTest) > 0 {
		u, fs, err := runUnit(ld, pd.ImportPath+"_test", pd.XTest, checks, internal, matched, relpos, directives)
		if err != nil {
			return nil, nil, err
		}
		units = append(units, u)
		findings = append(findings, fs...)
	}
	return units, findings, nil
}

// runUnit type-checks one compile unit, records its //lint:ignore
// directives into the shared index, and — when the package is matched —
// runs every per-package check over it and filters the raw findings
// through the directives. The returned unit feeds the whole-program phase.
func runUnit(ld *loader, path string, files []*ast.File, checks []*Check, internal, matched bool, relpos func(token.Pos) (string, int, int), directives map[string]*directiveIndex) (*unit, []Finding, error) {
	pkg, info, err := ld.check(path, files)
	if err != nil {
		return nil, nil, err
	}
	u := &unit{path: path, files: files, pkg: pkg, info: info, internal: internal}

	var raw []Finding
	report := func(f Finding) { raw = append(raw, f) }

	// Directive scan first: malformed directives surface even in clean code.
	for _, file := range files {
		name, _, _ := relpos(file.Pos())
		reportAt := func(pos token.Pos, check, msg string) {
			if !matched {
				return
			}
			f, line, col := relpos(pos)
			report(Finding{File: f, Line: line, Col: col, Check: check, Message: msg})
		}
		idx := parseDirectives(ld.fset, file, reportAt)
		directives[name] = &idx
	}
	if !matched {
		return u, nil, nil
	}

	for _, c := range checks {
		if c.Run == nil {
			continue
		}
		pass := &Pass{
			Fset:     ld.fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			PkgPath:  path,
			Internal: internal,
			check:    c,
			report:   report,
			relpos:   relpos,
		}
		c.Run(pass)
	}

	kept := raw[:0]
	for _, f := range raw {
		if idx, ok := directives[f.File]; ok && idx.suppresses(f.Check, f.Line) {
			continue
		}
		kept = append(kept, f)
	}
	return u, kept, nil
}

// compilePatterns converts CLI package patterns into a matcher over module
// import paths.
func compilePatterns(mod module, patterns []string) (func(string) bool, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	type rule struct {
		prefix string // import path prefix for "..." rules
		exact  string // exact import path otherwise
	}
	var rules []rule
	for _, pat := range patterns {
		p := filepath.ToSlash(pat)
		p = strings.TrimPrefix(p, "./")
		all := false
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			all = true
			p = strings.TrimSuffix(rest, "/")
		}
		ip := mod.Path
		if p != "" && p != "." {
			ip = mod.Path + "/" + strings.Trim(p, "/")
		}
		if all {
			rules = append(rules, rule{prefix: ip})
		} else {
			rules = append(rules, rule{exact: ip})
		}
	}
	return func(importPath string) bool {
		for _, r := range rules {
			if r.exact != "" && importPath == r.exact {
				return true
			}
			if r.prefix != "" && (importPath == r.prefix || strings.HasPrefix(importPath, r.prefix+"/")) {
				return true
			}
		}
		return false
	}, nil
}

// selectChecks resolves check names, defaulting to the full registry.
func selectChecks(names []string) ([]*Check, error) {
	if len(names) == 0 {
		return Checks(), nil
	}
	out := make([]*Check, 0, len(names))
	for _, name := range names {
		c := CheckByName(name)
		if c == nil {
			return nil, fmt.Errorf("lint: unknown check %q", name)
		}
		out = append(out, c)
	}
	return out, nil
}
