package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Finding is one diagnostic produced by a check. File is reported relative
// to the module root (or the analysis root in single-directory mode) so
// output is stable across machines and suitable for golden tests.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the canonical single-line form: file:line: [check] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// SortFindings orders findings by file, line, column, then check name —
// the deterministic order both the text and JSON emitters share.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// WriteText writes one finding per line in the canonical text form.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the findings as an indented JSON array. An empty slice
// renders as [] rather than null so consumers can always range over it.
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
