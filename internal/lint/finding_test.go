package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFindingString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 7, Col: 3, Check: "floatcmp", Message: "use an epsilon"}
	want := "a/b.go:7:3: [floatcmp] use an epsilon"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSortFindings(t *testing.T) {
	fs := []Finding{
		{File: "b.go", Line: 1, Col: 1, Check: "x"},
		{File: "a.go", Line: 9, Col: 1, Check: "x"},
		{File: "a.go", Line: 2, Col: 5, Check: "x"},
		{File: "a.go", Line: 2, Col: 1, Check: "z"},
		{File: "a.go", Line: 2, Col: 1, Check: "y"},
	}
	SortFindings(fs)
	order := make([]string, len(fs))
	for i, f := range fs {
		order[i] = f.String()
	}
	want := []string{
		"a.go:2:1: [y] ",
		"a.go:2:1: [z] ",
		"a.go:2:5: [x] ",
		"a.go:9:1: [x] ",
		"b.go:1:1: [x] ",
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q\nfull: %v", i, order[i], want[i], order)
		}
	}
}

// TestWriteJSONShape pins the -json output contract against a golden file:
// field names, ordering, and indentation are all part of the interface CI
// consumers parse.
func TestWriteJSONShape(t *testing.T) {
	fs := []Finding{
		{File: "internal/stat/kde.go", Line: 51, Col: 9, Check: "floatcmp", Message: "floating-point == comparison; use an epsilon (e.g. math.Abs(a-b) <= eps)"},
		{File: "internal/obs/metric.go", Line: 12, Col: 2, Check: "unchecked-err", Message: "result of os.Remove discards an error; check it or assign to _"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "json", "expected.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("JSON shape mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The output must round-trip into the same findings.
	var back []Finding
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(back) != len(fs) || back[0] != fs[0] || back[1] != fs[1] {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("WriteJSON(nil) = %q, want %q (never null)", got, "[]\n")
	}
}
