package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// EscapeBudgetFile is the checked-in budget, relative to the module root.
const EscapeBudgetFile = "ESCAPES.json"

// EscapeEntry is one aggregated compiler escape diagnostic attributed to a
// hot-path function: the count of "escapes to heap"/"moved to heap"
// messages with the given text inside that function. Line numbers are
// deliberately dropped so unrelated edits do not churn the budget.
type EscapeEntry struct {
	File  string `json:"file"`
	Func  string `json:"func"`
	Text  string `json:"text"`
	Count int    `json:"count"`
}

// escapeBudget is the on-disk shape of ESCAPES.json.
type escapeBudget struct {
	Comment string        `json:"comment"`
	Entries []EscapeEntry `json:"entries"`
}

// EscapeResult is the outcome of one -escapes run.
type EscapeResult struct {
	// Root is the module root the budget file lives in.
	Root string
	// Entries are the current hot-path escapes, sorted.
	Entries []EscapeEntry
	// Regressions are escapes above budget (new sites or grown counts).
	Regressions []string
	// Improvements are budget lines the code no longer produces; they mean
	// the budget can be ratcheted down with -update-escapes.
	Improvements []string
}

// RunEscapes compiles the module with -gcflags=-m, attributes the escape
// diagnostics to functions reachable from //cqm:hotpath roots, and diffs
// them against the checked-in budget. With update set, the budget file is
// rewritten to match the current state instead.
func RunEscapes(dir string, update bool) (*EscapeResult, error) {
	if dir == "" {
		dir = "."
	}
	mod, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	prog, err := loadProgram(dir)
	if err != nil {
		return nil, err
	}
	entries, err := collectEscapes(prog, mod.Root)
	if err != nil {
		return nil, err
	}
	res := &EscapeResult{Root: mod.Root, Entries: entries}
	budgetPath := filepath.Join(mod.Root, EscapeBudgetFile)
	if update {
		return res, writeEscapeBudget(budgetPath, entries)
	}
	budget, err := readEscapeBudget(budgetPath)
	if err != nil {
		return nil, err
	}
	res.Regressions, res.Improvements = diffEscapes(budget, entries)
	return res, nil
}

// collectEscapes runs the compiler and keeps diagnostics inside hot-path
// function extents.
func collectEscapes(prog *Program, root string) ([]EscapeEntry, error) {
	ranges := hotRanges(prog)
	if len(ranges) == 0 {
		return nil, nil
	}
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m failed: %v\n%s", err, out)
	}
	counts := make(map[EscapeEntry]int)
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		file, line, text, ok := parseDiagnostic(sc.Text())
		if !ok {
			continue
		}
		if !strings.Contains(text, "escapes to heap") && !strings.Contains(text, "moved to heap") {
			continue
		}
		for _, r := range ranges[file] {
			if line >= r.start && line <= r.end {
				counts[EscapeEntry{File: file, Func: r.key, Text: text}]++
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	entries := make([]EscapeEntry, 0, len(counts))
	for e, n := range counts {
		e.Count = n
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Text < b.Text
	})
	return entries, nil
}

// fnRange is one hot-path function's line extent within a file.
type fnRange struct {
	start, end int
	key        string
}

// hotRanges maps module-relative file paths to the extents of functions
// reachable from //cqm:hotpath roots.
func hotRanges(prog *Program) map[string][]fnRange {
	g := prog.Graph()
	var roots []*Node
	for _, n := range g.Nodes() {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	parent := g.Reachable(roots, true)
	out := make(map[string][]fnRange)
	for _, n := range g.Nodes() {
		if _, ok := parent[n]; !ok || n.Body == nil || n.Cold {
			continue
		}
		file, start, _ := prog.relpos(n.Pos())
		_, end, _ := prog.relpos(n.End())
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		key := n.Key
		// Literals share their enclosing declaration's attribution only
		// when the enclosing function is itself off-path, so keep the
		// literal key: it names the closure precisely.
		out[file] = append(out[file], fnRange{start: start, end: end, key: key})
	}
	// Narrower ranges first so literals win over their enclosing function.
	for f := range out {
		rs := out[f]
		sort.Slice(rs, func(i, j int) bool { return rs[i].end-rs[i].start < rs[j].end-rs[j].start })
	}
	return out
}

// parseDiagnostic splits a `file:line:col: text` compiler line.
func parseDiagnostic(s string) (file string, line int, text string, ok bool) {
	parts := strings.SplitN(s, ":", 4)
	if len(parts) != 4 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	if _, err := strconv.Atoi(parts[2]); err != nil {
		return "", 0, "", false
	}
	return filepath.ToSlash(parts[0]), n, strings.TrimSpace(parts[3]), true
}

// readEscapeBudget loads ESCAPES.json; a missing file is an empty budget
// (every hot-path escape then reads as a regression until -update-escapes
// records the baseline).
func readEscapeBudget(path string) ([]EscapeEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var b escapeBudget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
	}
	return b.Entries, nil
}

// writeEscapeBudget rewrites ESCAPES.json with the current state.
func writeEscapeBudget(path string, entries []EscapeEntry) error {
	b := escapeBudget{
		Comment: "Escape-analysis budget for //cqm:hotpath functions. Regenerate with: go run ./cmd/cqmlint -update-escapes",
		Entries: entries,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// diffEscapes compares current escapes against the budget: counts above
// budget are regressions, budgeted lines no longer produced are
// improvements.
func diffEscapes(budget, current []EscapeEntry) (regressions, improvements []string) {
	type key struct{ file, fn, text string }
	bm := make(map[key]int, len(budget))
	for _, e := range budget {
		bm[key{e.File, e.Func, e.Text}] += e.Count
	}
	cm := make(map[key]int, len(current))
	for _, e := range current {
		cm[key{e.File, e.Func, e.Text}] += e.Count
	}
	keys := make(map[key]bool, len(bm)+len(cm))
	for k := range bm {
		keys[k] = true
	}
	for k := range cm {
		keys[k] = true
	}
	ordered := make([]key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.fn != b.fn {
			return a.fn < b.fn
		}
		return a.text < b.text
	})
	for _, k := range ordered {
		switch c, b := cm[k], bm[k]; {
		case c > b:
			regressions = append(regressions,
				fmt.Sprintf("%s: %s: %q: %d escape(s), budget %d", k.file, k.fn, k.text, c, b))
		case c < b:
			improvements = append(improvements,
				fmt.Sprintf("%s: %s: %q: now %d, budget %d", k.file, k.fn, k.text, c, b))
		}
	}
	return regressions, improvements
}

// loadProgram type-checks the whole module around dir and returns the
// program view without running any checks — the -escapes mode and tools
// needing only the call graph use this.
func loadProgram(dir string) (*Program, error) {
	mod, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	dirs, err := discover(fset, mod)
	if err != nil {
		return nil, err
	}
	ld := newLoader(fset, mod, dirs)
	relpos := relposFunc(fset, mod.Root)
	var units []*unit
	directives := make(map[string]*directiveIndex)
	for _, path := range topoOrder(dirs) {
		pd, ok := dirs[path]
		if !ok {
			continue
		}
		us, _, err := runPackage(ld, pd, nil, false, relpos, directives)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return newProgram(fset, units, relpos), nil
}
