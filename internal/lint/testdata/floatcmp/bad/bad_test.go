package sample

func inexactConstInTest() bool {
	got := compute()
	return got != 0.05 // 0.05 has no exact float64 representation
}

func compute() float64 { return 0.05 }
