// Positive corpus: every comparison here must be reported.
package sample

func exactEqual(a, b float64) bool {
	return a == b
}

func exactNotEqual(a, b float64) bool {
	return a != b
}

func mixedConst(q float64) bool {
	return q == 0.25 // dyadic, but this is not a test file
}
