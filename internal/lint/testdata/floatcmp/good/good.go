// Negative corpus: nothing here may be reported.
package sample

import "math"

// Comparing against exact zero is the sentinel idiom.
func zeroSentinel(q float64) bool { return q == 0 }

// x != x is the NaN probe.
func isNaN(x float64) bool { return x != x }

type point struct {
	d  float64
	id int
}

// The sort tie-break idiom orders rather than tests equality.
func less(a, b point) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.id < b.id
}

// Epsilon comparison is the recommended form.
func close(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }
