package sample

// Var-vs-var equality in tests asserts rerun determinism — allowed.
func rerunsMatch() bool {
	a := produce()
	b := produce()
	return a == b
}

// Dyadic constants are exactly representable — allowed in tests.
func dyadicConst() bool {
	return produce() == 0.5
}

// Golden helpers byte-compare recorded values — allowed even for
// inexact constants.
func goldenCompare() bool {
	return produce() == 0.3
}

func produce() float64 { return 0.5 }
