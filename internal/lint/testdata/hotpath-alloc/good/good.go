// Package good shows the three sanctioned ways off the hot-path
// allocation hook: keep the root allocation-free, amortise rare work
// behind //cqm:coldpath, and waive a justified site with //lint:ignore.
package good

// Score accumulates in place and defers rare work to a cold helper.
//
//cqm:hotpath
func Score(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if len(v) == 0 {
		return fallback()
	}
	return s
}

// fallback only runs on empty input, which callers treat as an error
// path; its buffer is amortised away from the steady state.
//
//cqm:coldpath
func fallback() float64 {
	buf := make([]float64, 1)
	return buf[0]
}

// Scratch grows a reusable buffer; the append is waived because it
// amortises to zero once the buffer reaches steady-state capacity.
//
//cqm:hotpath
func Scratch(buf []float64, x float64) []float64 {
	return append(buf, x) //lint:ignore hotpath-alloc amortised growth of a caller-owned buffer
}
