// Package bad allocates on a //cqm:hotpath route: directly in the root
// and transitively in a helper the root calls.
package bad

import "fmt"

// Score is the hot entry point; the scratch buffer and the formatted
// label below must both be flagged.
//
//cqm:hotpath
func Score(v []float64) float64 {
	tmp := make([]float64, len(v))
	copy(tmp, v)
	return helper(tmp)
}

// helper is reachable from Score, so its allocations count too.
func helper(v []float64) float64 {
	out := 0.0
	for _, x := range v {
		out += x
	}
	label := fmt.Sprintf("sum=%f", out)
	_ = label
	return out
}
