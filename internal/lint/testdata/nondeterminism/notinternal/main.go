// Scope corpus: identical violations to bad/, but analyzed as a non-internal
// (cmd-style) package, where wall-clock use is the point.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	fmt.Println(time.Now(), rand.Float64())
}
