// Negative corpus: seeded sources, injected clocks, sorted emission.
package sample

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Explicitly seeded source — the deterministic idiom.
func draw(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Method calls on a threaded *rand.Rand are fine.
func shuffle(rng *rand.Rand, xs []int) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// The clock arrives as a parameter.
func format(t time.Time) string {
	return t.Format(time.RFC3339)
}

// Collect, sort, then emit — map order never reaches the output.
func emit(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
