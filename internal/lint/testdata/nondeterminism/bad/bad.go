// Positive corpus: global rand, wall clock, and map-order output.
package sample

import (
	"fmt"
	"math/rand"
	"time"
)

func draw() float64 {
	return rand.Float64()
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func stamp() time.Time {
	return time.Now()
}

func age(t time.Time) time.Duration {
	return time.Since(t)
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
