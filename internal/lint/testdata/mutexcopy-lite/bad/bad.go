// Positive corpus: locks moved by value through signatures.
package sample

import "sync"

func lockByValue(mu sync.Mutex) {
	mu.Lock()
}

func giveLock() sync.RWMutex {
	var m sync.RWMutex
	return m
}

var anon = func(mu sync.Mutex) {
	mu.Lock()
}
