// Negative corpus: locks shared by pointer or embedded in owned state.
package sample

import "sync"

func lockByPointer(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}

func newLock() *sync.RWMutex {
	return new(sync.RWMutex)
}

// A mutex field in a struct is fine as long as the struct itself is not
// copied; vet's copylocks (also in CI) covers assignment-position copies.
type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}
