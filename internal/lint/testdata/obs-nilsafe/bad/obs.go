// Positive corpus: metric methods that dereference a possibly-nil receiver.
package obs

type Counter struct {
	n int64
}

// Inc touches c.n before any nil guard.
func (c *Counter) Inc() {
	c.n++
}

type Gauge struct {
	v float64
}

// Set guards, but only after the first receiver access.
func (g *Gauge) Set(v float64) {
	old := g.v
	if g == nil {
		return
	}
	_ = old
	g.v = v
}
