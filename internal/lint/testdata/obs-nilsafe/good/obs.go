// Negative corpus: the nil-guard idiom, plus shapes the check must not flag.
package obs

type Counter struct {
	n int64
}

// Inc opens with the guard, so a nil *Counter is a safe no-op.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Value never touches a field through the receiver directly.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

type Gauge struct {
	v float64
}

// reset is unexported; only exported entry points need the guard.
func (g *Gauge) reset() {
	g.v = 0
}

type Snapshot struct {
	N int64
}

// Total is a value receiver on a non-metric type; out of scope.
func (s Snapshot) Total() int64 {
	return s.N
}
