// Directive corpus: directives that must NOT silence the finding.
package sample

import "time"

func wrongCheck(a float64) bool {
	return a == 0.1 //lint:ignore nondeterminism names a different check
}

func trailingDoesNotLeak() time.Time {
	_ = 0 //lint:ignore nondeterminism trailing form is single-line
	return time.Now()
}
