// Directive corpus: every finding here is silenced by an ignore directive.
package sample

import (
	"os"
	"time"
)

// The own-line form covers the whole declaration that starts below it.
//
//lint:ignore floatcmp exactness is the property under test
func exact(a, b float64) bool {
	return a == b
}

func mixed(a float64) bool {
	stamp := time.Now() //lint:ignore nondeterminism trailing form covers this line only
	_ = stamp
	return a == 0.1 //lint:ignore floatcmp,unchecked-err comma list matches either check
}

//lint:ignore all blanket waiver for a known-dirty helper
func dirty(a float64) bool {
	os.Remove("tmp")
	return a != 0.3
}
