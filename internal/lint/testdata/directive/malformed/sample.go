// Directive corpus: ignore directives without a reason are themselves findings.
package sample

//lint:ignore floatcmp
func exact(a, b float64) bool {
	return a == b
}

func alsoBad(a float64) bool {
	return a == 0.1 //lint:ignore
}
