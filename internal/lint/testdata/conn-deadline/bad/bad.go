// Positive corpus: connection I/O loops with no deadline in sight.
package sample

import (
	"io"
	"net"
)

func readLoop(conn net.Conn) {
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

func writeLoop(conn *net.TCPConn, frames [][]byte) {
	for _, f := range frames {
		if _, err := conn.Write(f); err != nil {
			return
		}
	}
}

func fullFrameLoop(conn net.Conn) {
	var frame [64]byte
	for {
		if _, err := io.ReadFull(conn, frame[:]); err != nil {
			return
		}
	}
}

func relay(dst, src net.Conn) {
	for {
		if _, err := io.Copy(dst, src); err != nil {
			return
		}
	}
}
