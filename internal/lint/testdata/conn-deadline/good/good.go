// Negative corpus: connection loops with deadlines armed, plus shapes the
// check must leave alone.
package sample

import (
	"bytes"
	"io"
	"net"
	"time"
)

func readLoopArmed(conn net.Conn) {
	buf := make([]byte, 1024)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// methodValueArmed re-arms through a helper: the setter appears only as a
// method value, which must still count.
func methodValueArmed(conn net.Conn) {
	var frame [64]byte
	for {
		arm(conn.SetReadDeadline, time.Second)
		if _, err := io.ReadFull(conn, frame[:]); err != nil {
			return
		}
	}
}

func arm(set func(time.Time) error, d time.Duration) {
	_ = set(time.Now().Add(d))
}

// plainReaderLoop reads from a reader with no deadline surface — files and
// buffers cannot stall on a peer.
func plainReaderLoop(r *bytes.Reader) {
	buf := make([]byte, 16)
	for {
		if _, err := r.Read(buf); err != nil {
			return
		}
	}
}

// singleRead blocks at most once; only loops accumulate unbounded stalls.
func singleRead(conn net.Conn) {
	buf := make([]byte, 16)
	_, _ = conn.Read(buf)
}

// waived documents why the loop is deliberately unbounded.
func waived(conn net.Conn) {
	buf := make([]byte, 16)
	for {
		//lint:ignore conn-deadline the caller owns this conn's deadline
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}
