// Negative corpus: the sanctioned journal access patterns stay quiet.
package sample

import (
	"os"
	"path/filepath"
)

const journalName = "journal.log"

func openAppendOnly(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func openReadOnly(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, journalName), os.O_RDONLY, 0)
}

func repairTornTail(dir string, goodLen int64) error {
	// Torn-tail repair discards an uncommitted suffix, never committed
	// records; os.Truncate is the sanctioned tool for it.
	return os.Truncate(filepath.Join(dir, journalName), goodLen)
}

func writeUnrelated(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "report.txt"), data, 0o644)
}

func writeOpaque(path string, data []byte) error {
	// An opaque path may be a journal, but the call site cannot prove it;
	// flagging every opaque write would drown the signal.
	return os.WriteFile(path, data, 0o644)
}
