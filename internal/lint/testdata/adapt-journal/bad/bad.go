// Positive corpus: write paths that can rewrite committed journal records.
package sample

import (
	"os"
	"path/filepath"
)

const journalName = "journal.log"

func rewriteWholesale(data []byte) error {
	return os.WriteFile("state/journal.log", data, 0o644)
}

func createTruncates(dir string) (*os.File, error) {
	return os.Create(filepath.Join(dir, journalName))
}

func openTruncating(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "journal.log"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func openSeekable(dir string) (*os.File, error) {
	// No O_APPEND: a Seek+Write can land inside committed records.
	return os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_WRONLY, 0o644)
}
