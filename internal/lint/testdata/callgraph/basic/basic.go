// Package basic exercises every edge kind the call-graph builder
// produces: static calls, conservative interface dispatch, method
// values, function literals, recursion, and hot/cold pragmas.
package basic

// Doer is implemented by both A (value receiver) and B (pointer
// receiver), so dispatch through it fans out to both methods.
type Doer interface{ Do() int }

// A implements Doer on the value.
type A struct{}

// Do returns a constant.
func (A) Do() int { return 1 }

// B implements Doer on the pointer.
type B struct{ n int }

// Do returns the stored value.
func (b *B) Do() int { return b.n }

// UseIface dispatches through the interface: edges to every
// implementation.
func UseIface(d Doer) int { return d.Do() }

// MethodValue returns a bound method value: a ref edge, not a call.
func MethodValue() func() int {
	var a A
	return a.Do
}

// Recurse calls itself: a static self-edge.
func Recurse(n int) int {
	if n <= 0 {
		return 0
	}
	return Recurse(n - 1)
}

// Hot roots the reachability walk and closes over Recurse via a
// literal.
//
//cqm:hotpath
func Hot() int {
	f := func() int { return Recurse(3) }
	return f() + UseIface(A{})
}

// Cold is annotated off-path.
//
//cqm:coldpath
func Cold() int { return UseIface(&B{n: 2}) }
