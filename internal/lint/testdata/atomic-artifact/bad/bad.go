// Positive corpus: torn-file-prone writes of .json artifacts.
package sample

import (
	"os"
	"path/filepath"
)

func writeLiteral(data []byte) error {
	return os.WriteFile("model.json", data, 0o644)
}

func writeJoined(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "measure.json"), data, 0o644)
}

func writeConcat(dir string, data []byte) error {
	return os.WriteFile(dir+"/classifier.json", data, 0o644)
}
