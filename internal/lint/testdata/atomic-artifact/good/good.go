// Negative corpus: non-artifact writes and opaque paths stay quiet; the
// atomic path (which the real code reaches via ckpt.AtomicWriteFile) is
// out of this check's reach by construction.
package sample

import (
	"os"
	"path/filepath"
)

func writeCSV(dir string, data []byte) error {
	return os.WriteFile(filepath.Join(dir, "dataset.csv"), data, 0o644)
}

func writeOpaque(path string, data []byte) error {
	// The path may well be a .json file, but the call site cannot prove
	// it; flagging every opaque path would drown the signal.
	return os.WriteFile(path, data, 0o644)
}

func writeText(data []byte) error {
	return os.WriteFile("NOTES.txt", data, 0o600)
}
