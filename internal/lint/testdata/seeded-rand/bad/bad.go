// Positive corpus: RNGs built from opaque sources.
package sample

import "math/rand"

func fromVariable(seed int64) *rand.Rand {
	src := rand.NewSource(seed)
	return rand.New(src)
}

func fromParameter(src rand.Source) *rand.Rand {
	return rand.New(src)
}

func fromCall() *rand.Rand {
	return rand.New(makeSource())
}

func makeSource() rand.Source {
	return rand.NewSource(1)
}
