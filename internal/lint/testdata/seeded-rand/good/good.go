// Negative corpus: the seed is visible at every construction site.
package sample

import "math/rand"

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func derived(seed int64, round int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(round)*101))
}
