// Package good holds the clean counterparts: clock values taken as
// inputs, map keys sorted before encoding, and diagnostics routed to
// stderr, none of which should trip the taint walk.
package good

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

type payload struct {
	Stamp float64 `json:"stamp"`
}

// Export takes the timestamp as an input: the caller owns determinism.
func Export(path string, at time.Time) error {
	p := payload{Stamp: float64(at.UnixNano())}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Bus stands in for an event bus; Publish is a determinism sink.
type Bus struct{}

// Publish delivers values to subscribers in order.
func (b *Bus) Publish(vals []float64) {}

// Flush sorts the keys first, so the published order is a pure function
// of the map contents.
func Flush(b *Bus, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]float64, 0, len(keys))
	for _, k := range keys {
		vals = append(vals, m[k])
	}
	b.Publish(vals)
}

// Trace logs the wall clock to stderr, which is exempt: diagnostics are
// allowed to be nondeterministic.
func Trace() {
	fmt.Fprintf(os.Stderr, "trace at %v\n", time.Now())
}
