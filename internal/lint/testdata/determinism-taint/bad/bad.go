// Package bad seeds cross-function nondeterminism leaks: the wall clock
// and map iteration order are laundered through helper calls before
// reaching an encoder or publish sink, so the syntactic nondeterminism
// check (which only looks at internal packages' direct call sites) never
// sees them. Only the interprocedural taint walk can.
package bad

import (
	"encoding/json"
	"os"
	"time"
)

type payload struct {
	Stamp float64 `json:"stamp"`
}

// stamp launders the wall clock through two calls before the encoder.
func stamp() float64 { return secs() }

func secs() float64 { return float64(time.Now().UnixNano()) }

// Export encodes a clock-derived payload: the taint crosses
// stamp -> secs -> time.Now and must surface at the Marshal call.
func Export(path string) error {
	p := payload{Stamp: stamp()}
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Bus stands in for an event bus; Publish is a determinism sink.
type Bus struct{}

// Publish delivers values to subscribers in order.
func (b *Bus) Publish(vals []float64) {}

// Flush publishes map values in iteration order — a run-to-run diff.
func Flush(b *Bus, m map[string]float64) {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	b.Publish(vals)
}
