// Package bad holds lock-discipline violations: a mutex held across a
// blocking channel receive (directly and through a helper call) and an
// AB/BA lock-order inversion.
package bad

import "sync"

// S couples two mutexes with a channel so every violation shape fits in
// one type.
type S struct {
	mu  sync.Mutex
	nu  sync.Mutex
	ch  chan int
	val int
}

// BlockUnderLock receives from the channel while holding mu: if the
// sender needs mu, this deadlocks.
func (s *S) BlockUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch
}

// Indirect blocks through a helper call, which only the transitive
// may-block walk can see.
func (s *S) Indirect() {
	s.mu.Lock()
	wait(s.ch)
	s.mu.Unlock()
}

func wait(ch chan int) int { return <-ch }

// LockAB acquires mu then nu.
func (s *S) LockAB() {
	s.mu.Lock()
	s.nu.Lock()
	s.val++
	s.nu.Unlock()
	s.mu.Unlock()
}

// LockBA acquires nu then mu — the inversion of LockAB.
func (s *S) LockBA() {
	s.nu.Lock()
	s.mu.Lock()
	s.val++
	s.mu.Unlock()
	s.nu.Unlock()
}
