// Package good holds the disciplined counterparts: locks released
// before blocking, a single global acquisition order, and sync.Cond
// whose Wait is exempt by design (it releases the lock internally).
package good

import "sync"

// S mirrors the bad fixture's shape.
type S struct {
	mu  sync.Mutex
	nu  sync.Mutex
	ch  chan int
	val int
}

// Snapshot copies state under the lock and blocks only after releasing.
func (s *S) Snapshot() int {
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	return v + <-s.ch
}

// NestedOne acquires mu before nu.
func (s *S) NestedOne() {
	s.mu.Lock()
	s.nu.Lock()
	s.val++
	s.nu.Unlock()
	s.mu.Unlock()
}

// NestedTwo uses the same mu-then-nu order, so no inversion exists.
func (s *S) NestedTwo() {
	s.mu.Lock()
	s.nu.Lock()
	s.val--
	s.nu.Unlock()
	s.mu.Unlock()
}

// CondWait parks on a condition variable while formally holding its
// lock; Wait releases it internally, so the checker must stay quiet.
func CondWait(c *sync.Cond, ready func() bool) {
	c.L.Lock()
	for !ready() {
		c.Wait()
	}
	c.L.Unlock()
}
