// Positive corpus: exported names with no doc comment.
package sample

const Threshold = 0.8

var DefaultName = "cqm"

type Widget struct{}

func Build() *Widget {
	return &Widget{}
}

func (w *Widget) Run() {}
