// Negative corpus: documented exports and exempt shapes.
package sample

// Threshold is the default acceptance bound.
const Threshold = 0.8

// Grouped declarations are covered by the block doc.
var (
	DefaultName = "cqm"
	DefaultTags = []string{"a"}
)

// Widget is a documented exported type.
type Widget struct{}

// Build constructs a Widget.
func Build() *Widget {
	return &Widget{}
}

// Run executes the widget.
func (w *Widget) Run() {}

type hidden struct{}

// Methods on unexported receivers are exempt even when exported.
func (h *hidden) Poke() {}

func internalOnly() {}
