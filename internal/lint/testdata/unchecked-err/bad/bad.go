// Positive corpus: statement-position calls that drop an error.
package sample

import (
	"os"
	"strconv"
)

func drop() {
	os.Remove("tmp")
	strconv.ParseFloat("0.5", 64)
}
