// Negative corpus: handled, explicitly discarded, deferred, or infallible.
package sample

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func handled() error {
	if err := os.Remove("tmp"); err != nil {
		return err
	}
	_ = os.Remove("tmp2")   // explicit, greppable discard
	defer os.Remove("tmp3") // deferred cleanup is best-effort by policy

	fmt.Println("progress") // fmt writes to the terminal; exempt

	var sb strings.Builder
	sb.WriteString("x") // documented never to fail
	var buf bytes.Buffer
	buf.WriteString("y") // documented never to fail
	return nil
}
