package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestTaintCatchesWhatSyntacticCheckMisses is the acceptance test for
// the interprocedural engine: the fixture's time.Now call is laundered
// through two helper calls before reaching json.Marshal, and the
// package is not one of the internal ones the syntactic nondeterminism
// check patrols. The old check must stay silent; the taint walk must
// flag the encoder.
func TestTaintCatchesWhatSyntacticCheckMisses(t *testing.T) {
	dir := filepath.Join("testdata", "determinism-taint", "bad")

	old, err := RunDir(dir, []string{"nondeterminism"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 0 {
		t.Fatalf("syntactic nondeterminism check unexpectedly fired (%d findings); the fixture no longer demonstrates the gap", len(old))
	}

	taint, err := RunDir(dir, []string{"determinism-taint"}, false)
	if err != nil {
		t.Fatal(err)
	}
	var clockLeak bool
	for _, f := range taint {
		if strings.Contains(f.Message, "wall clock") && strings.Contains(f.Message, "json.Marshal") {
			clockLeak = true
		}
	}
	if !clockLeak {
		t.Errorf("determinism-taint missed the laundered time.Now→json.Marshal leak; findings: %v", taint)
	}
}
