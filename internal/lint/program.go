package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unit is one type-checked compile unit retained for whole-program
// analysis: a package's base+test files, or its external test package.
type unit struct {
	path     string // import path of the unit (pkg, or pkg_test)
	files    []*ast.File
	pkg      *types.Package
	info     *types.Info
	internal bool
}

// Program is the whole-module view the interprocedural checks run over:
// every type-checked unit plus the call graph spanning them.
type Program struct {
	fset  *token.FileSet
	units []*unit
	graph *Graph

	relpos func(token.Pos) (file string, line, col int)
}

// newProgram assembles the program and builds its call graph.
func newProgram(fset *token.FileSet, units []*unit, relpos func(token.Pos) (string, int, int)) *Program {
	p := &Program{fset: fset, units: units, relpos: relpos}
	p.graph = buildGraph(p)
	return p
}

// Graph returns the program call graph.
func (p *Program) Graph() *Graph { return p.graph }

// Fset returns the program's file set.
func (p *Program) Fset() *token.FileSet { return p.fset }

// InTestFile reports whether pos sits in a *_test.go file.
func (p *Program) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.fset.Position(pos).Filename, "_test.go")
}

// GraphPass hands the whole program to one graph check.
type GraphPass struct {
	Prog *Program

	check  *Check
	report func(Finding)
}

// Reportf records one finding at pos.
func (gp *GraphPass) Reportf(pos token.Pos, format string, args ...any) {
	file, line, col := gp.Prog.relpos(pos)
	gp.report(Finding{
		File:    file,
		Line:    line,
		Col:     col,
		Check:   gp.check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Info returns the type information of the node's compile unit.
func (n *Node) Info() *types.Info { return n.unit.info }

// Pkg returns the node's defining package.
func (n *Node) Pkg() *types.Package { return n.unit.pkg }

// Internal reports whether the node lives in an internal/ library package.
func (n *Node) Internal() bool { return n.unit.internal }

// runGraphChecks runs every selected graph check over the program and
// returns the raw findings (directive filtering happens in the caller,
// which owns the per-file directive indexes).
func runGraphChecks(prog *Program, checks []*Check) []Finding {
	var raw []Finding
	for _, c := range checks {
		if c.Graph == nil {
			continue
		}
		gp := &GraphPass{
			Prog:   prog,
			check:  c,
			report: func(f Finding) { raw = append(raw, f) },
		}
		c.Graph(gp)
	}
	return raw
}
