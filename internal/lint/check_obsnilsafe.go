package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	register(&Check{
		Name: "obs-nilsafe",
		Doc:  "exported obs metric method touches receiver fields without the leading nil guard",
		Run:  runObsNilsafe,
	})
}

// nilSafeTypes are the obs types whose documented contract is "a nil
// pointer is a no-op": every exported pointer-receiver method must begin
// with `if recv == nil { ... }` before touching receiver state, so
// instrumented code can run unconditionally with metrics disabled.
var nilSafeTypes = map[string]bool{
	"Registry":  true,
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Timer":     true,
}

// runObsNilsafe enforces the nil-guard idiom inside packages named obs.
// A method violates it when it dereferences a receiver field and its first
// statement is not a nil check on the receiver. Unexported methods are the
// guarded-side helpers (lookup, sortedFamilies) and are exempt: their
// callers hold the guarantee.
func runObsNilsafe(pass *Pass) {
	if pass.Pkg.Name() != "obs" {
		return
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recvName, typeName := pointerReceiver(fd)
			if !nilSafeTypes[typeName] {
				continue
			}
			if !touchesReceiverField(pass, fd, recvName) {
				continue
			}
			if len(fd.Body.List) > 0 && isNilGuard(fd.Body.List[0], recvName) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"exported method (*%s).%s accesses receiver fields without a leading `if %s == nil` guard",
				typeName, fd.Name.Name, recvName)
		}
	}
}

// pointerReceiver returns the receiver identifier and pointed-to type name
// for a pointer-receiver method, or empty strings otherwise.
func pointerReceiver(fd *ast.FuncDecl) (recv, typeName string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", ""
	}
	field := fd.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", ""
	}
	base := star.X
	if idx, ok := base.(*ast.IndexExpr); ok { // generic receiver
		base = idx.X
	}
	id, ok := base.(*ast.Ident)
	if !ok || len(field.Names) == 0 {
		return "", ""
	}
	return field.Names[0].Name, id.Name
}

// touchesReceiverField reports whether the method body selects a struct
// field (not a method) off the receiver identifier.
func touchesReceiverField(pass *Pass, fd *ast.FuncDecl, recvName string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != recvName {
			return true
		}
		if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			found = true
			return false
		}
		return true
	})
	return found
}

// isNilGuard reports whether stmt is an if statement whose condition
// contains `recv == nil` (possibly inside a || chain).
func isNilGuard(stmt ast.Stmt, recvName string) bool {
	ifStmt, ok := stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	guard := false
	ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		if isIdentNilPair(be.X, be.Y, recvName) || isIdentNilPair(be.Y, be.X, recvName) {
			guard = true
			return false
		}
		return true
	})
	return guard
}

func isIdentNilPair(a, b ast.Expr, recvName string) bool {
	id, ok := a.(*ast.Ident)
	if !ok || id.Name != recvName {
		return false
	}
	nilIdent, ok := b.(*ast.Ident)
	return ok && nilIdent.Name == "nil"
}
