package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func init() {
	register(&Check{
		Name:  "lock-discipline",
		Doc:   "no blocking call while holding a mutex; consistent acquisition order between mutex pairs",
		Graph: runLockDiscipline,
	})
}

// runLockDiscipline enforces two whole-program locking invariants:
//
//  1. No operation that may block — channel sends/receives, selects
//     without default, time.Sleep, WaitGroup.Wait, bus publishes, or a
//     call whose transitive body does any of those — runs while a
//     sync.Mutex/RWMutex is held. sync.Cond.Wait is exempt (it is
//     designed to be called under the lock).
//  2. No two mutexes are acquired in both nesting orders anywhere in the
//     program (the classic AB/BA deadlock shape).
//
// The held-region tracking is source-ordered and flow-approximate;
// disagreements are waived in place with //lint:ignore lock-discipline.
func runLockDiscipline(gp *GraphPass) {
	g := gp.Prog.Graph()

	// Phase 1: which functions may block, directly or transitively.
	// Edges taken under a go statement hand the blocking to the new
	// goroutine and are excluded.
	mayBlock := make(map[*Node]string)
	goCalls := make(map[*Node]map[string]bool)
	for _, n := range g.Nodes() {
		if n.Body == nil {
			continue
		}
		if why := directBlock(n); why != "" {
			mayBlock[n] = why
		}
		goCalls[n] = goCalleeKeys(n)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if n.Body == nil || mayBlock[n] != "" {
				continue
			}
			for _, e := range n.Edges() {
				if e.Kind > EdgeIface || goCalls[n][e.To.Key] {
					continue
				}
				if mayBlock[e.To] != "" {
					mayBlock[n] = "call to " + e.To.Key + ", which may block"
					changed = true
					break
				}
			}
		}
	}

	// Phase 2: per-function held-region scan.
	type site struct {
		pos  token.Pos
		held string
	}
	order := make(map[[2]string]site)
	for _, n := range g.Nodes() {
		if n.Body == nil || gp.Prog.InTestFile(n.Pos()) {
			continue
		}
		blockOf := func(key string) string {
			if to := g.NodeByKey(key); to != nil {
				return mayBlock[to]
			}
			return ""
		}
		scanHeld(gp, n, blockOf, func(outer, inner string, pos token.Pos) {
			key := [2]string{outer, inner}
			if _, ok := order[key]; !ok {
				order[key] = site{pos: pos, held: outer}
			}
		})
	}

	// Report each inverted pair once, deterministically, at the
	// lexicographically later ordering's site.
	var keys [][2]string
	for k := range order {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rev := [2]string{k[1], k[0]}
		other, ok := order[rev]
		if !ok || k[0] <= k[1] {
			continue
		}
		file, line, _ := gp.Prog.relpos(other.pos)
		gp.Reportf(order[k].pos, "lock %s acquired while holding %s, but the opposite order occurs at %s:%d; pick one nesting order", k[1], k[0], file, line)
	}
}

// scanHeld walks one body in source order maintaining the set of held
// locks; blocking operations and nested acquisitions while holding are
// reported / recorded. Nested function literals start with nothing held
// (they run on their own goroutine or are analyzed as their own node).
func scanHeld(gp *GraphPass, n *Node, blockOf func(string) string, recordPair func(outer, inner string, pos token.Pos)) {
	info := n.Info()
	type heldLock struct {
		id     string
		sticky bool // deferred unlock: held to function end
	}
	var held []heldLock
	pop := func(id string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].id == id && !held[i].sticky {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	blockWhileHeld := func(pos token.Pos, why string) {
		if len(held) == 0 {
			return
		}
		gp.Reportf(pos, "%s while holding lock %s; release the lock before blocking", why, held[len(held)-1].id)
	}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// defer x.Unlock() (or a literal wrapping unlocks): the lock
			// stays held for the rest of the function.
			for _, id := range deferredUnlocks(info, node) {
				for i := range held {
					if held[i].id == id {
						held[i].sticky = true
					}
				}
			}
			return false
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			blockWhileHeld(node.Pos(), "channel send")
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				blockWhileHeld(node.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				blockWhileHeld(node.Pos(), "select without default")
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					blockWhileHeld(node.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			if id, method, isLockOp := lockOp(info, node); isLockOp {
				switch method {
				case "Lock", "RLock":
					for _, h := range held {
						if h.id != id {
							recordPair(h.id, id, node.Pos())
						}
					}
					held = append(held, heldLock{id: id})
				case "Unlock", "RUnlock":
					pop(id)
				}
				return true
			}
			if why := callBlocks(info, node, blockOf); why != "" {
				blockWhileHeld(node.Pos(), why)
			}
		}
		return true
	})
}

// directBlock scans one body (literals excluded — they are their own
// nodes) for operations that block the calling goroutine.
func directBlock(n *Node) string {
	info := n.Info()
	why := ""
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if why != "" {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			why = "channel send"
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				why = "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(node) {
				why = "select without default"
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					why = "range over channel"
				}
			}
		case *ast.CallExpr:
			why = blockingCallee(info, node)
		}
		return true
	})
	return why
}

// blockingCallee classifies known-blocking callees: time.Sleep,
// WaitGroup.Wait, and bus Publish methods.
func blockingCallee(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	switch {
	case fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
		return "time.Sleep"
	case fn.Name() == "Wait" && recvNamed(fn) == "sync.WaitGroup":
		return "WaitGroup.Wait"
	case fn.Name() == "Publish" && hasRecv(fn):
		return "bus publish"
	}
	return ""
}

// callBlocks reports why a call site may block: a known-blocking callee,
// or an in-program callee whose transitive body blocks.
func callBlocks(info *types.Info, call *ast.CallExpr, blockOf func(key string) string) string {
	if why := blockingCallee(info, call); why != "" {
		return why
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	if why := blockOf(funcKey(fn)); why != "" {
		return "call to " + funcKey(fn) + " (" + why + ")"
	}
	return ""
}

// goCalleeKeys collects the node keys of functions launched with `go` in
// one body: their blocking belongs to the new goroutine, not the caller.
func goCalleeKeys(n *Node) map[string]bool {
	info := n.Info()
	out := make(map[string]bool)
	ast.Inspect(n.Body, func(node ast.Node) bool {
		g, ok := node.(*ast.GoStmt)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, g.Call); fn != nil {
			out[funcKey(fn)] = true
		}
		return true
	})
	return out
}

// lockOp classifies a call as a mutex operation, returning a stable
// program-wide identity for the lock (pkg.Type.field where resolvable).
// sync.Cond methods are excluded: Cond.Wait is designed to run under the
// lock and Cond's L field is not an acquisition site.
func lockOp(info *types.Info, call *ast.CallExpr) (id, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return lockIdentity(info, sel.X), sel.Sel.Name, true
}

// lockIdentity renders a program-wide name for the mutex expression:
// `e.mu` on a *quality.Engine receiver becomes quality.Engine.mu, so the
// same lock matches across methods regardless of receiver names.
func lockIdentity(info *types.Info, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		if named := namedOf(info.TypeOf(sel.X)); named != nil {
			obj := named.Obj()
			prefix := obj.Name()
			if obj.Pkg() != nil {
				prefix = obj.Pkg().Name() + "." + prefix
			}
			return prefix + "." + sel.Sel.Name
		}
		return types.ExprString(expr)
	}
	if ident, ok := expr.(*ast.Ident); ok {
		if named := namedOf(info.TypeOf(ident)); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			// Promoted embedded mutex: identify by the owning type.
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + ".(embedded)"
		}
		if obj := info.ObjectOf(ident); obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + ident.Name
		}
		return ident.Name
	}
	return types.ExprString(expr)
}

// namedOf unwraps pointers to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// recvNamed renders a method's receiver type as pkg.Type, or "".
func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// hasRecv reports whether fn is a method.
func hasRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// deferredUnlocks collects the lock identities unlocked by a defer
// statement, looking through a wrapping function literal.
func deferredUnlocks(info *types.Info, def *ast.DeferStmt) []string {
	var ids []string
	collect := func(call *ast.CallExpr) {
		if id, method, ok := lockOp(info, call); ok && (method == "Unlock" || method == "RUnlock") {
			ids = append(ids, id)
		}
	}
	collect(def.Call)
	if lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok {
				collect(call)
			}
			return true
		})
	}
	return ids
}

// selectHasDefault reports whether a select statement has a default case.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
