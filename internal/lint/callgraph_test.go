package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCallGraphGolden pins the builder's output shape on a fixture that
// holds every edge kind: static calls, interface dispatch fan-out,
// method-value and literal references, recursion, and pragmas.
func TestCallGraphGolden(t *testing.T) {
	dir := filepath.Join("testdata", "callgraph", "basic")
	prog, err := ProgramDir(dir)
	if err != nil {
		t.Fatalf("ProgramDir(%s): %v", dir, err)
	}
	got := prog.Graph().Dump()

	golden := filepath.Join(dir, "graph.txt")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("graph dump mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCallGraphReachability checks the hot-root walk: reference edges
// pull in literals and the functions they close over, interface dispatch
// fans out to every implementation, and //cqm:coldpath stops descent.
func TestCallGraphReachability(t *testing.T) {
	prog, err := ProgramDir(filepath.Join("testdata", "callgraph", "basic"))
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Graph()
	var roots []*Node
	for _, n := range g.Nodes() {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	if len(roots) != 1 || !strings.HasSuffix(roots[0].Key, ".Hot") {
		t.Fatalf("want exactly the Hot root, got %v", roots)
	}
	root := roots[0]
	if root.Pkg() == nil || root.Pkg().Name() != "basic" {
		t.Errorf("root package = %v, want basic", root.Pkg())
	}
	if !root.Internal() {
		t.Errorf("ProgramDir loads fixtures as internal units; Internal() = false")
	}
	if prog.Fset() == nil || !root.End().IsValid() || root.End() <= root.Pos() {
		t.Errorf("node extent malformed: Pos=%v End=%v", root.Pos(), root.End())
	}
	parent := g.Reachable(roots, true)

	reached := func(suffix string) *Node {
		for n := range parent {
			if strings.HasSuffix(n.Key, suffix) {
				return n
			}
		}
		return nil
	}
	for _, suffix := range []string{".Hot$1", ".Recurse", ".UseIface", "(A).Do", "(*B).Do"} {
		if reached(suffix) == nil {
			t.Errorf("node %q not reachable from Hot", suffix)
		}
	}
	if n := reached(".Cold"); n != nil {
		t.Errorf("Cold reached from Hot via %q", RootPath(parent, n))
	}

	rec := reached(".Recurse")
	path := RootPath(parent, rec)
	if !strings.Contains(path, ".Hot") || !strings.HasSuffix(path, ".Recurse") {
		t.Errorf("RootPath(Recurse) = %q, want a Hot→…→Recurse chain", path)
	}

	// Without reference edges the literal (and the recursion behind it)
	// drops out, but the direct static call chain must remain.
	noRefs := g.Reachable(roots, false)
	for n := range noRefs {
		if strings.HasSuffix(n.Key, ".Hot$1") {
			t.Errorf("literal reached with followRefs=false")
		}
	}
	found := false
	for n := range noRefs {
		if strings.HasSuffix(n.Key, ".UseIface") {
			found = true
		}
	}
	if !found {
		t.Errorf("static callee UseIface not reached with followRefs=false")
	}
}

// FuzzCallGraph feeds hostile sources through the full load→type-check→
// build pipeline: inputs that fail to parse or type-check are skipped;
// everything that compiles must produce a graph without panicking, with
// a dump that mentions every declared node, and with a reachability walk
// that terminates.
func FuzzCallGraph(f *testing.F) {
	for _, fixture := range []string{
		filepath.Join("testdata", "callgraph", "basic", "basic.go"),
		filepath.Join("testdata", "determinism-taint", "bad", "bad.go"),
		filepath.Join("testdata", "lock-discipline", "bad", "bad.go"),
	} {
		data, err := os.ReadFile(fixture)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Add("package p\n\nfunc a() { b() }\nfunc b() { a() }\n")
	f.Add("package p\n\ntype I interface{ M() }\ntype T struct{}\nfunc (T) M() {}\nfunc u(i I) { i.M() }\n")
	f.Fuzz(func(t *testing.T, src string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fuzztarget\n\ngo 1.24\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "fuzz.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		prog, err := ProgramDir(dir)
		if err != nil {
			return // does not parse or type-check; not our concern
		}
		g := prog.Graph()
		dump := g.Dump()
		for _, n := range g.Nodes() {
			if !strings.Contains(dump, n.Key) {
				t.Errorf("dump is missing node %q", n.Key)
			}
		}
		g.Reachable(g.Nodes(), true)
	})
}
