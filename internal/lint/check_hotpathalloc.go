package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	register(&Check{
		Name:  "hotpath-alloc",
		Doc:   "no unwaived allocation reachable from a //cqm:hotpath root",
		Graph: runHotpathAlloc,
	})
}

// runHotpathAlloc walks every function reachable from a //cqm:hotpath
// annotation (pruned at //cqm:coldpath) and reports each allocation site:
// make/new, append (may grow), heap-bound composite literals, closures,
// string building, allocating stdlib formatters, and interface boxing of
// call arguments. Every surviving site is either fixed or carries a
// reasoned //lint:ignore waiver — the hot path's allocation budget is the
// set of waivers. Test files are exempt.
func runHotpathAlloc(gp *GraphPass) {
	g := gp.Prog.Graph()
	var roots []*Node
	for _, n := range g.Nodes() {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return
	}
	parent := g.Reachable(roots, true)
	for _, n := range g.Nodes() {
		if _, ok := parent[n]; !ok {
			continue
		}
		// A //cqm:coldpath body is itself off the path, not just its callees.
		if n.Cold || n.Body == nil || gp.Prog.InTestFile(n.Pos()) {
			continue
		}
		path := RootPath(parent, n)
		scanAllocs(gp, n, path)
	}
}

// scanAllocs reports the allocation sites in one reachable function body.
// Nested literals are separate graph nodes and are not descended into
// (the closure's creation is itself reported).
func scanAllocs(gp *GraphPass, n *Node, path string) {
	info := n.Info()
	hot := func(pos ast.Node, what string) {
		gp.Reportf(pos.Pos(), "%s on hot path %s", what, path)
	}
	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			hot(node, "closure allocation")
			return false
		case *ast.CompositeLit:
			if t := info.TypeOf(node); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					hot(node, "slice literal allocation")
				case *types.Map:
					hot(node, "map literal allocation")
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					hot(node, "heap-bound &composite literal")
					return false
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(info.TypeOf(node)) {
				hot(node, "string concatenation")
			}
		case *ast.CallExpr:
			scanCallAlloc(gp, info, node, hot)
		}
		return true
	})
}

// scanCallAlloc classifies one call expression's allocation behaviour.
func scanCallAlloc(gp *GraphPass, info *types.Info, call *ast.CallExpr, hot func(ast.Node, string)) {
	// Conversions: string <-> []byte/[]rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type.Underlying(), info.TypeOf(call.Args[0])
		if from == nil {
			return
		}
		if (isStringType(to) && !isStringType(from.Underlying())) ||
			(!isStringType(to) && isStringType(from.Underlying())) {
			if _, toBasicOK := to.(*types.Basic); toBasicOK || isByteOrRuneSlice(to) {
				hot(call, "string conversion allocation")
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				hot(call, "make allocation")
			case "new":
				hot(call, "new allocation")
			case "append":
				hot(call, "append (may grow)")
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt":
			switch fn.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Errorf":
				hot(call, "fmt."+fn.Name()+" allocation")
				return
			}
		case "strings":
			switch fn.Name() {
			case "Join", "Repeat":
				hot(call, "strings."+fn.Name()+" allocation")
				return
			}
		case "strconv":
			switch fn.Name() {
			case "FormatFloat", "FormatInt", "FormatUint", "Itoa", "Quote":
				hot(call, "strconv."+fn.Name()+" allocation")
				return
			}
		}
	}
	scanBoxing(info, call, hot)
}

// scanBoxing reports concrete arguments passed to interface-typed
// parameters — each boxes its value onto the heap. Untyped nil and
// interface-to-interface passes are free.
func scanBoxing(info *types.Info, call *ast.CallExpr, hot func(ast.Node, string)) {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		hot(arg, "interface boxing of argument")
	}
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether t is []byte or []rune.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
