package lint

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

func init() {
	register(&Check{
		Name: "floatcmp",
		Doc:  "== or != between floating-point operands; compare with an epsilon instead",
		Run:  runFloatcmp,
	})
}

// runFloatcmp flags exact equality between floating-point values. The CQM
// pipeline's quality scores travel through subtractive clustering, SVD
// least squares, and ANFIS gradient steps — after that many rounding
// events an exact comparison is a latent bug, not a check.
//
// Exemptions, each an intentional-exactness idiom in this tree:
//   - comparison against an exact floating zero: q == 0 is how the
//     pipeline tests "sentinel / never set", and 0 survives direct
//     assignment exactly;
//   - x != x, the standard NaN probe;
//   - the sort tie-break idiom `if a != b { return a < b }`, where the
//     comparison orders rather than tests equality;
//   - bodies of golden helpers in *_test.go files (functions whose name
//     contains "golden"), which byte-compare recorded output.
//
// In *_test.go files the check narrows to comparisons against a constant
// that float64 cannot represent exactly (0.05, 0.03, …): the assertion
// only holds while the value is stored verbatim and silently breaks the
// moment it is ever computed. Variable-vs-variable equality in tests
// asserts bit determinism of reruns, and dyadic constants (2, 0.5) are
// exact, so both stay legal there — tests lean on determinism by design.
func runFloatcmp(pass *Pass) {
	for _, file := range pass.Files {
		golden := goldenHelperRanges(pass, file)
		inTest := pass.InTestFile(file.Pos())
		tiebreaks := tiebreakConds(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.Info.Types[be.X].Type) && !isFloat(pass.Info.Types[be.Y].Type) {
				return true
			}
			if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
				return true
			}
			if inTest && !isInexactConst(pass, be.X) && !isInexactConst(pass, be.Y) {
				return true // determinism assertion or exact dyadic constant
			}
			if exprString(pass.Fset, be.X) == exprString(pass.Fset, be.Y) {
				return true // x != x NaN idiom
			}
			if tiebreaks[be] {
				return true
			}
			for _, r := range golden {
				if be.Pos() >= r[0] && be.Pos() < r[1] {
					return true
				}
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon (e.g. math.Abs(a-b) <= eps)", be.Op)
			return true
		})
	}
}

// tiebreakConds collects the conditions of `if a != b { return a < b }`
// (or >, <=, >=) statements — the comparator tie-break idiom, where the
// equality test partitions rather than asserts.
func tiebreakConds(fset *token.FileSet, file *ast.File) map[*ast.BinaryExpr]bool {
	out := make(map[*ast.BinaryExpr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || ifStmt.Else != nil || ifStmt.Init != nil || len(ifStmt.Body.List) != 1 {
			return true
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.NEQ {
			return true
		}
		ret, ok := ifStmt.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		ord, ok := ret.Results[0].(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch ord.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		cx, cy := exprString(fset, cond.X), exprString(fset, cond.Y)
		ox, oy := exprString(fset, ord.X), exprString(fset, ord.Y)
		if (cx == ox && cy == oy) || (cx == oy && cy == ox) {
			out[cond] = true
		}
		return true
	})
	return out
}

// goldenHelperRanges returns the position ranges of golden-helper function
// bodies in a test file.
func goldenHelperRanges(pass *Pass, file *ast.File) [][2]token.Pos {
	if !pass.InTestFile(file.Pos()) {
		return nil
	}
	var out [][2]token.Pos
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if strings.Contains(strings.ToLower(fd.Name.Name), "golden") {
			out = append(out, [2]token.Pos{fd.Body.Pos(), fd.Body.End()})
		}
	}
	return out
}

// isFloat reports whether t's core type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInexactConst reports whether e is a floating literal that float64
// cannot represent exactly. The literal text is re-folded from source:
// go/types records constant values already rounded to their type, so the
// exactness of the written decimal is only visible in the syntax.
func isInexactConst(pass *Pass, e ast.Expr) bool {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
			continue
		case *ast.UnaryExpr:
			if v.Op == token.SUB || v.Op == token.ADD {
				e = v.X
				continue
			}
			return false
		}
		break
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.FLOAT {
		return false
	}
	v := constant.MakeFromLiteral(lit.Value, token.FLOAT, 0)
	if constant.ToFloat(v).Kind() != constant.Float {
		return false
	}
	_, exact := constant.Float64Val(constant.ToFloat(v))
	return !exact
}

// isExactZero reports whether e is a compile-time floating zero.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0 //lint:ignore floatcmp deciding the exemption itself needs the exact test
}

// exprString renders an expression for structural comparison.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}
