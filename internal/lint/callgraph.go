package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies one call-graph edge by how the callee was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call of a named function or a method on a
	// concrete receiver.
	EdgeStatic EdgeKind = iota
	// EdgeIface is a conservative interface-dispatch edge: a call through
	// an interface method linked to every in-program concrete method that
	// implements it.
	EdgeIface
	// EdgeRef records that a function value was taken (method value,
	// function passed as a callback, or a func literal declared in the
	// body): the referer may cause the referee to run.
	EdgeRef
)

// String renders the edge kind for dumps and diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeIface:
		return "iface"
	default:
		return "ref"
	}
}

// Node is one function in the program call graph: a declared function or
// method, or a function literal.
type Node struct {
	// Key is the canonical cross-package identity, e.g.
	// cqm/internal/core.(*Measure).ScoreBatch or cqm/internal/eval.Render$1
	// for the first func literal inside Render.
	Key string
	// Fn is the type object; nil for function literals.
	Fn *types.Func
	// Body is the function body (never nil; bodiless declarations get no
	// node).
	Body *ast.BlockStmt
	// Decl is the declaration; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal; nil for declared functions.
	Lit *ast.FuncLit
	// Unit is the compile unit the node was parsed from.
	unit *unit
	// Hot and Cold record the //cqm:hotpath and //cqm:coldpath pragmas on
	// the declaration's doc comment.
	Hot, Cold bool

	out map[*Node]EdgeKind
}

// Pos returns the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// End returns the node's end position.
func (n *Node) End() token.Pos {
	if n.Decl != nil {
		return n.Decl.End()
	}
	return n.Lit.End()
}

// addEdge records caller→callee, keeping the strongest resolution kind
// (static over iface over ref) when an edge is recorded more than once.
func (n *Node) addEdge(to *Node, kind EdgeKind) {
	if to == nil {
		return
	}
	if prev, ok := n.out[to]; !ok || kind < prev {
		n.out[to] = kind
	}
}

// Edges returns the node's outgoing edges sorted by callee key.
func (n *Node) Edges() []Edge {
	out := make([]Edge, 0, len(n.out))
	for to, kind := range n.out {
		out = append(out, Edge{To: to, Kind: kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To.Key < out[j].To.Key })
	return out
}

// Edge is one outgoing call-graph edge.
type Edge struct {
	To   *Node
	Kind EdgeKind
}

// Graph is the program call graph: one node per function body, edges for
// static calls, conservative interface dispatch, and function-value
// references.
type Graph struct {
	nodes map[string]*Node
}

// NodeByKey returns the node with the given canonical key, or nil.
func (g *Graph) NodeByKey(key string) *Node { return g.nodes[key] }

// Nodes returns every node sorted by key.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// funcKey renders the canonical cross-package identity of a declared
// function or method. Duplicate type-checks of the same package (a base
// unit checked once for import resolution and once with its tests) yield
// distinct *types.Func objects, so graph identity must be by name.
func funcKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig != nil && sig.Recv() != nil {
		return pkg + "." + recvString(sig.Recv().Type()) + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// recvString renders a receiver type as (T) or (*T).
func recvString(t types.Type) string {
	ptr := false
	if p, ok := t.(*types.Pointer); ok {
		ptr = true
		t = p.Elem()
	}
	name := "?"
	switch t := t.(type) {
	case *types.Named:
		name = t.Obj().Name()
	case *types.Basic:
		name = t.Name()
	}
	if ptr {
		return "(*" + name + ")"
	}
	return "(" + name + ")"
}

// buildGraph constructs the call graph over the program's units.
func buildGraph(prog *Program) *Graph {
	g := &Graph{nodes: make(map[string]*Node)}

	// Pass 1: one node per declared function body, pragmas parsed from the
	// doc comment. Later units win on key collision (the base+tests unit is
	// processed once; collisions only occur for identically named decls in
	// a package and its external test unit, where either body is fine).
	type declared struct {
		n *Node
		u *unit
	}
	var all []declared
	for _, u := range prog.units {
		for _, file := range u.files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{
					Key:  funcKey(obj),
					Fn:   obj,
					Body: fd.Body,
					Decl: fd,
					unit: u,
					out:  make(map[*Node]EdgeKind),
				}
				n.Hot, n.Cold = pragmas(fd.Doc)
				g.nodes[n.Key] = n
				all = append(all, declared{n, u})
			}
		}
	}

	// Concrete named types across all units, for interface dispatch.
	var concrete []*types.Named
	for _, u := range prog.units {
		scope := u.pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, named)
		}
	}

	// Pass 2: edges. Function literals become nodes as they are found.
	for _, d := range all {
		walkBody(g, d.n, concrete)
	}
	return g
}

// pragmas scans a doc comment for the //cqm:hotpath and //cqm:coldpath
// annotations.
func pragmas(doc *ast.CommentGroup) (hot, cold bool) {
	if doc == nil {
		return false, false
	}
	for _, c := range doc.List {
		switch strings.TrimSpace(c.Text) {
		case "//cqm:hotpath":
			hot = true
		case "//cqm:coldpath":
			cold = true
		}
	}
	return hot, cold
}

// walkBody adds the outgoing edges of one node, creating nodes for nested
// function literals (edged from their enclosing function as refs, since
// declaring a closure hands its caller the means to run it).
func walkBody(g *Graph, n *Node, concrete []*types.Named) {
	u := n.unit
	// Pre-pass: identifiers that are the Fun of a call in this body (not
	// inside nested literals) resolve through addCallEdges, not as refs.
	funIdents := make(map[*ast.Ident]bool)
	ast.Inspect(n.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				funIdents[fun] = true
			case *ast.SelectorExpr:
				funIdents[fun.Sel] = true
			}
		}
		return true
	})
	lits := 0
	ast.Inspect(n.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			if node == n.Lit {
				return true
			}
			lits++
			child := &Node{
				Key:  fmt.Sprintf("%s$%d", n.Key, lits),
				Body: node.Body,
				Lit:  node,
				unit: u,
				out:  make(map[*Node]EdgeKind),
			}
			g.nodes[child.Key] = child
			n.addEdge(child, EdgeRef)
			walkBody(g, child, concrete)
			return false // the recursive walk covered the literal's body
		case *ast.CallExpr:
			addCallEdges(g, n, node, concrete)
		case *ast.Ident:
			// A function name in non-call position: a reference.
			if fn, ok := u.info.Uses[node].(*types.Func); ok && !funIdents[node] {
				n.addEdge(g.nodes[funcKey(fn)], EdgeRef)
			}
		}
		return true
	})
}

// addCallEdges resolves one call expression into graph edges.
func addCallEdges(g *Graph, n *Node, call *ast.CallExpr, concrete []*types.Named) {
	u := n.unit
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := u.info.Uses[fun].(*types.Func); ok {
			n.addEdge(g.nodes[funcKey(fn)], EdgeStatic)
		}
	case *ast.SelectorExpr:
		fn, ok := u.info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return
		}
		if sel, ok := u.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				addIfaceEdges(g, n, iface, fn, concrete)
				return
			}
		}
		n.addEdge(g.nodes[funcKey(fn)], EdgeStatic)
	}
}

// addIfaceEdges links an interface-method call to every in-program
// concrete method implementing it — the conservative dispatch
// approximation: any implementor may be behind the interface.
func addIfaceEdges(g *Graph, n *Node, iface *types.Interface, method *types.Func, concrete []*types.Named) {
	for _, named := range concrete {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(method.Pkg(), method.Name())
		if sel == nil {
			continue
		}
		impl, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		if to := g.nodes[funcKey(impl)]; to != nil {
			n.addEdge(to, EdgeIface)
		}
	}
}

// Reachable walks the graph from the given roots and returns, for every
// reached node, its predecessor on the discovery path (roots map to nil).
// Cold nodes terminate the walk: their bodies are treated as off the path.
// followRefs controls whether function-value reference edges are followed.
func (g *Graph) Reachable(roots []*Node, followRefs bool) map[*Node]*Node {
	parent := make(map[*Node]*Node)
	queue := make([]*Node, 0, len(roots))
	for _, r := range roots {
		if _, ok := parent[r]; ok || r == nil {
			continue
		}
		parent[r] = nil
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.Cold {
			continue
		}
		for _, e := range cur.Edges() {
			if e.Kind == EdgeRef && !followRefs {
				continue
			}
			if _, seen := parent[e.To]; seen {
				continue
			}
			parent[e.To] = cur
			queue = append(queue, e.To)
		}
	}
	return parent
}

// RootPath renders the discovery path from a root to n, e.g.
// "A → B → C", using the parent map from Reachable.
func RootPath(parent map[*Node]*Node, n *Node) string {
	var keys []string
	for cur := n; cur != nil; cur = parent[cur] {
		keys = append(keys, cur.Key)
		if len(keys) > 32 {
			break
		}
	}
	for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
		keys[i], keys[j] = keys[j], keys[i]
	}
	return strings.Join(keys, " → ")
}

// Dump renders the graph deterministically for golden tests: one line per
// node sorted by key, indented lines per outgoing edge sorted by callee.
func (g *Graph) Dump() string {
	var sb strings.Builder
	for _, n := range g.Nodes() {
		sb.WriteString(n.Key)
		var marks []string
		if n.Hot {
			marks = append(marks, "hotpath")
		}
		if n.Cold {
			marks = append(marks, "coldpath")
		}
		if len(marks) > 0 {
			sb.WriteString(" [" + strings.Join(marks, ",") + "]")
		}
		sb.WriteString("\n")
		for _, e := range n.Edges() {
			fmt.Fprintf(&sb, "  -> %s [%s]\n", e.To.Key, e.Kind)
		}
	}
	return sb.String()
}
