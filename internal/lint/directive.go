package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directive is one parsed //lint:ignore comment. It suppresses matching
// findings on its own line and throughout the AST node that starts on the
// line immediately below it, so one directive above a declaration can
// waive every occurrence inside it.
type directive struct {
	fromLine int
	toLine   int
	checks   string // comma-separated check names, or "all"
	reason   string
	pos      token.Pos
}

// directiveIndex holds the parsed ignore directives of one file.
type directiveIndex struct {
	directives []directive
}

const directivePrefix = "lint:ignore"

// parseDirectives scans a file's comments for //lint:ignore directives.
// Malformed directives (missing check list or missing reason) are reported
// as findings under the reserved check name "directive" so they cannot
// silently fail to suppress anything.
func parseDirectives(fset *token.FileSet, file *ast.File, report func(pos token.Pos, check, msg string)) directiveIndex {
	extent := nodeExtents(fset, file)
	var idx directiveIndex
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := directiveText(c.Text)
			if !ok {
				continue
			}
			fields := strings.Fields(text)
			if len(fields) < 2 {
				report(c.Pos(), "directive",
					"malformed //lint:ignore: want \"//lint:ignore check-name reason\"")
				continue
			}
			line := fset.Position(c.Pos()).Line
			to := line
			// A directive on its own line scopes over the node starting
			// on the next line; one trailing code covers only its line.
			if _, shared := extent[line]; !shared {
				if end, ok := extent[line+1]; ok {
					to = end
				}
			}
			idx.directives = append(idx.directives, directive{
				fromLine: line,
				toLine:   to,
				checks:   fields[0],
				reason:   strings.Join(fields[1:], " "),
				pos:      c.Pos(),
			})
		}
	}
	return idx
}

// nodeExtents maps each starting line to the last line of the widest AST
// node beginning there — the scope a directive on the preceding line covers.
func nodeExtents(fset *token.FileSet, file *ast.File) map[int]int {
	extent := make(map[int]int)
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false // comments are not suppression scopes
		}
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > extent[start] {
			extent[start] = end
		}
		return true
	})
	return extent
}

// directiveText extracts the payload after "lint:ignore" from a raw comment,
// or reports ok=false when the comment is not an ignore directive. Only
// //-style comments are honoured: a directive must be machine-editable on
// one line.
func directiveText(raw string) (string, bool) {
	if !strings.HasPrefix(raw, "//") {
		return "", false
	}
	body := strings.TrimPrefix(raw, "//")
	if !strings.HasPrefix(body, directivePrefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(body, directivePrefix)), true
}

// suppresses reports whether a finding for check at the given line is
// covered by any directive in the file.
func (idx *directiveIndex) suppresses(check string, line int) bool {
	for _, d := range idx.directives {
		if line >= d.fromLine && line <= d.toLine && d.matches(check) {
			return true
		}
	}
	return false
}

func (d directive) matches(check string) bool {
	if d.checks == "all" {
		return true
	}
	for _, name := range strings.Split(d.checks, ",") {
		if name == check {
			return true
		}
	}
	return false
}
