package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	register(&Check{
		Name: "mutexcopy-lite",
		Doc:  "sync.Mutex or sync.RWMutex passed or returned by value",
		Run:  runMutexCopy,
	})
}

// runMutexCopy flags function signatures — declarations and literals —
// that move a sync.Mutex or sync.RWMutex by value through a parameter,
// result, or value receiver. A copied mutex guards nothing: the copy and
// the original lock independently, which is exactly the silent corruption
// mode the obs registry and the awareoffice bus must never hit. The check
// is "lite" relative to vet's copylocks: it covers the signature surface
// (where this repo's APIs are designed) and leaves assignment-position
// copies to vet, which CI also runs.
func runMutexCopy(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var ft *ast.FuncType
			var recv *ast.FieldList
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft = n.Type
				recv = n.Recv
			case *ast.FuncLit:
				ft = n.Type
			default:
				return true
			}
			checkFieldList(pass, recv, "receiver")
			checkFieldList(pass, ft.Params, "parameter")
			checkFieldList(pass, ft.Results, "result")
			return true
		})
	}
}

func checkFieldList(pass *Pass, fl *ast.FieldList, role string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		if name := mutexValueType(pass, field.Type); name != "" {
			pass.Reportf(field.Type.Pos(), "sync.%s %s by value copies the lock; use *sync.%s", name, role, name)
		}
	}
}

// mutexValueType returns "Mutex" or "RWMutex" when the field type is the
// bare sync type (not a pointer to it), else "".
func mutexValueType(pass *Pass, expr ast.Expr) string {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if name := obj.Name(); name == "Mutex" || name == "RWMutex" {
		return name
	}
	return ""
}
