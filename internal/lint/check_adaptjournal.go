package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

func init() {
	register(&Check{
		Name: "adapt-journal",
		Doc:  "journal file written outside the append-only commit funnel",
		Run:  runAdaptJournal,
	})
}

// runAdaptJournal guards the adaptation journal's append-only contract.
// Each journal record is a commit point: the crash-resume protocol replays
// the file and trusts that every committed line is immutable. Any write
// path that can rewrite or truncate committed records — os.WriteFile or
// os.Create on a journal path, or os.OpenFile without O_APPEND (or with
// O_TRUNC) — silently rewrites history that the resume logic has already
// acted on. The only sanctioned writers are Journal.Append (append-only
// open + fsync per line) and the torn-tail repair in OpenJournal, which
// uses os.Truncate to discard an uncommitted suffix and therefore does not
// trip this check. The check fires on calls whose path argument mentions
// "journal" in a string literal or constant — the signature of a
// hard-coded journal file name.
func runAdaptJournal(pass *Pass) {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := calleePkgFunc(pass, call)
			if pkg != "os" || len(call.Args) == 0 {
				return true
			}
			switch name {
			case "WriteFile", "Create":
				if !mentionsJournal(pass, call.Args[0]) {
					return true
				}
				pass.Reportf(call.Pos(), "os.%s rewrites committed journal records; append them through the journal's commit path", name)
			case "OpenFile":
				if len(call.Args) < 2 || !mentionsJournal(pass, call.Args[0]) {
					return true
				}
				flags := openFlagNames(call.Args[1])
				if flags["O_TRUNC"] {
					pass.Reportf(call.Pos(), "opening the journal with O_TRUNC discards committed records; open it append-only")
				} else if !flags["O_APPEND"] && !flags["O_RDONLY"] {
					pass.Reportf(call.Pos(), "writable journal open without O_APPEND can overwrite committed records; open it append-only")
				}
			}
			return true
		})
	}
}

// mentionsJournal reports whether the expression contains a string literal
// or string constant whose value mentions "journal".
func mentionsJournal(pass *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		if strings.Contains(strings.ToLower(constant.StringVal(tv.Value)), "journal") {
			found = true
		}
		return !found
	})
	return found
}

// openFlagNames collects the os.O_* identifiers mentioned in an OpenFile
// flags expression. A flags value laundered through a variable yields an
// empty set, which the caller treats as append-less (writable opens of the
// journal are rare enough that naming the flags inline is the idiom).
func openFlagNames(expr ast.Expr) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.HasPrefix(id.Name, "O_") {
			names[id.Name] = true
		}
		return true
	})
	return names
}
