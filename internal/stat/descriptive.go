package stat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance, or 0 for samples
// with fewer than two points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// PopStdDev returns the population (divide-by-n) standard deviation — the
// MLE estimator; this is the cue the AwarePen classifier computes from its
// accelerometer windows.
func PopStdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MinMax returns the smallest and largest values in xs. It returns
// (0, 0) for empty samples.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median of xs (the mean of the two central values for
// even-length samples), or 0 for an empty sample. The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return 0.5 * (sorted[n/2-1] + sorted[n/2])
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics. The input is not modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// ZeroCrossings counts sign changes in xs around its mean — a cheap
// frequency cue used by the feature extractors.
func ZeroCrossings(xs []float64) int {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	count := 0
	prevPos := xs[0] >= mu
	for _, x := range xs[1:] {
		pos := x >= mu
		if pos != prevPos {
			count++
			prevPos = pos
		}
	}
	return count
}

// RMS returns the root-mean-square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		ss += x * x
	}
	return math.Sqrt(ss / float64(len(xs)))
}
