package stat

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBootstrapMeanInterval(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 0.8 + 0.1*r.NormFloat64()
	}
	iv, err := Bootstrap(xs, func(s []float64) (float64, error) { return Mean(s), nil }, 500, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.8) {
		t.Errorf("interval [%v, %v] misses the true mean", iv.Lo, iv.Hi)
	}
	// σ/√n = 0.01, so the 95% interval spans roughly ±0.02.
	if iv.Width() > 0.1 || iv.Width() <= 0 {
		t.Errorf("implausible width %v", iv.Width())
	}
	if !almostEqual(iv.Level, 0.95) {
		t.Errorf("Level = %v", iv.Level)
	}
}

func TestBootstrapShrinksWithSampleSize(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	big := make([]float64, 400)
	for i := range big {
		big[i] = r.NormFloat64()
	}
	small := big[:25]
	mean := func(s []float64) (float64, error) { return Mean(s), nil }
	ivSmall, err := Bootstrap(small, mean, 400, 0.95, 4)
	if err != nil {
		t.Fatal(err)
	}
	ivBig, err := Bootstrap(big, mean, 400, 0.95, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ivBig.Width() >= ivSmall.Width() {
		t.Errorf("more data widened the interval: %v vs %v", ivBig.Width(), ivSmall.Width())
	}
}

func TestBootstrapValidation(t *testing.T) {
	mean := func(s []float64) (float64, error) { return Mean(s), nil }
	if _, err := Bootstrap(nil, mean, 100, 0.95, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	xs := []float64{1, 2, 3}
	if _, err := Bootstrap(xs, mean, 5, 0.95, 1); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := Bootstrap(xs, mean, 100, 1.5, 1); err == nil {
		t.Error("bad level accepted")
	}
}

func TestBootstrapSkipsFailingResamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	failing := func(s []float64) (float64, error) {
		return 0, errors.New("always undefined")
	}
	if _, err := Bootstrap(xs, failing, 100, 0.95, 1); !errors.Is(err, ErrDegenerate) {
		t.Errorf("all-failing statistic: %v", err)
	}
}

func TestBootstrapPairedThreshold(t *testing.T) {
	// Quality scores: wrong around 0.2, right around 0.9.
	r := rand.New(rand.NewSource(5))
	var xs []float64
	var labels []bool
	for i := 0; i < 16; i++ {
		xs = append(xs, 0.9+0.04*r.NormFloat64())
		labels = append(labels, true)
	}
	for i := 0; i < 8; i++ {
		xs = append(xs, 0.2+0.1*r.NormFloat64())
		labels = append(labels, false)
	}
	threshold := func(q []float64, lab []bool) (float64, error) {
		var right, wrong []float64
		for i, v := range q {
			if lab[i] {
				right = append(right, v)
			} else {
				wrong = append(wrong, v)
			}
		}
		if len(right) == 0 || len(wrong) == 0 {
			return 0, ErrNoData
		}
		gr, err := FitGaussianMLE(right)
		if err != nil {
			return 0, err
		}
		gw, err := FitGaussianMLE(wrong)
		if err != nil {
			return 0, err
		}
		s, err := Intersect(gw, gr, 0, 1)
		if err != nil {
			return 0.5 * (gw.Mu + gr.Mu), nil
		}
		return s, nil
	}
	iv, err := BootstrapPaired(xs, labels, threshold, 400, 0.9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo < 0.2 || iv.Hi > 1.0 || iv.Lo >= iv.Hi {
		t.Errorf("threshold interval [%v, %v] implausible", iv.Lo, iv.Hi)
	}
}

func TestBootstrapPairedValidation(t *testing.T) {
	stat := func(q []float64, l []bool) (float64, error) { return 0, nil }
	if _, err := BootstrapPaired([]float64{1}, []bool{true, false}, stat, 100, 0.9, 1); !errors.Is(err, ErrNoData) {
		t.Errorf("mismatched: %v", err)
	}
	if _, err := BootstrapPaired([]float64{1}, []bool{true}, stat, 100, 2, 1); err == nil {
		t.Error("bad level accepted")
	}
}

func TestBootstrapDeterministicForSeed(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9, 0.3, 0.7}
	mean := func(s []float64) (float64, error) { return Mean(s), nil }
	a, err := Bootstrap(xs, mean, 200, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bootstrap(xs, mean, 200, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different intervals")
	}
}
