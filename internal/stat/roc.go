package stat

import "sort"

// ROCPoint is one operating point of a score threshold: the true-positive
// and false-positive rates obtained by accepting scores >= Threshold.
type ROCPoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// ROC computes the receiver operating characteristic for a score that
// should be high for positive examples. scores and positives run in
// parallel; positives[i] reports whether example i is truly positive.
//
// The curve is returned from the most permissive threshold (accept all) to
// the strictest (accept none), which makes the FPR axis non-increasing.
func ROC(scores []float64, positives []bool) []ROCPoint {
	if len(scores) != len(positives) || len(scores) == 0 {
		return nil
	}
	type obs struct {
		score float64
		pos   bool
	}
	data := make([]obs, len(scores))
	var posTotal, negTotal int
	for i, s := range scores {
		data[i] = obs{score: s, pos: positives[i]}
		if positives[i] {
			posTotal++
		} else {
			negTotal++
		}
	}
	sort.Slice(data, func(i, j int) bool { return data[i].score < data[j].score })

	// Sweep the threshold upward; at each distinct score value compute the
	// rates for "accept >= threshold".
	points := make([]ROCPoint, 0, len(data)+1)
	tp, fp := posTotal, negTotal // threshold below the minimum accepts all
	rate := func(n, total int) float64 {
		if total == 0 {
			return 0
		}
		return float64(n) / float64(total)
	}
	points = append(points, ROCPoint{Threshold: data[0].score, TPR: rate(tp, posTotal), FPR: rate(fp, negTotal)})
	for i := 0; i < len(data); {
		j := i
		//lint:ignore floatcmp grouping ties of sorted, uncomputed scores is exact by construction
		for j < len(data) && data[j].score == data[i].score {
			if data[j].pos {
				tp--
			} else {
				fp--
			}
			j++
		}
		thr := data[j-1].score
		if j < len(data) {
			thr = data[j].score
		} else {
			thr = data[j-1].score + 1e-12
		}
		points = append(points, ROCPoint{Threshold: thr, TPR: rate(tp, posTotal), FPR: rate(fp, negTotal)})
		i = j
	}
	return points
}

// AUC returns the area under the ROC curve by trapezoidal integration over
// FPR. 1.0 means perfect separation, 0.5 is chance.
func AUC(points []ROCPoint) float64 {
	if len(points) < 2 {
		return 0
	}
	// Points run from FPR 1 down to 0; integrate with ordered pairs. Both
	// rates are monotone in the threshold, so sorting by (FPR, TPR)
	// reconstructs the sweep's staircase even across FPR ties.
	pts := make([]ROCPoint, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FPR != pts[j].FPR {
			return pts[i].FPR < pts[j].FPR
		}
		return pts[i].TPR < pts[j].TPR
	})
	var area float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].FPR - pts[i-1].FPR
		area += dx * 0.5 * (pts[i].TPR + pts[i-1].TPR)
	}
	return area
}
