package stat

import (
	"fmt"
	"math/rand"
	"sort"
)

// Interval is a two-sided percentile confidence interval.
type Interval struct {
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Bootstrap computes a percentile confidence interval for a statistic by
// resampling xs with replacement. The statistic receives each resample;
// resamples for which it returns a non-nil error are skipped (some
// statistics — density intersections, for instance — are undefined on
// degenerate resamples), but at least half must succeed.
//
// The paper derives its threshold and probabilities from 24 points; a
// bootstrap interval makes the resulting sampling uncertainty visible.
func Bootstrap(xs []float64, statistic func([]float64) (float64, error), resamples int, level float64, seed int64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrNoData
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stat: %d resamples, want >= 10", resamples)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stat: confidence level %v outside (0,1)", level)
	}
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, 0, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		v, err := statistic(buf)
		if err != nil {
			continue
		}
		values = append(values, v)
	}
	if len(values) < resamples/2 {
		return Interval{}, fmt.Errorf("%w: statistic defined on only %d/%d resamples",
			ErrDegenerate, len(values), resamples)
	}
	sort.Float64s(values)
	alpha := (1 - level) / 2
	return Interval{
		Lo:    Quantile(values, alpha),
		Hi:    Quantile(values, 1-alpha),
		Level: level,
	}, nil
}

// BootstrapPaired resamples index-aligned pairs (xs[i], labels[i]) — the
// right shape for statistics over labelled quality scores, like the
// optimal threshold between right and wrong classifications.
func BootstrapPaired(
	xs []float64,
	labels []bool,
	statistic func(xs []float64, labels []bool) (float64, error),
	resamples int,
	level float64,
	seed int64,
) (Interval, error) {
	if len(xs) == 0 || len(xs) != len(labels) {
		return Interval{}, fmt.Errorf("%w: %d values, %d labels", ErrNoData, len(xs), len(labels))
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stat: %d resamples, want >= 10", resamples)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stat: confidence level %v outside (0,1)", level)
	}
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, 0, resamples)
	bufX := make([]float64, len(xs))
	bufL := make([]bool, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range bufX {
			j := rng.Intn(len(xs))
			bufX[i] = xs[j]
			bufL[i] = labels[j]
		}
		v, err := statistic(bufX, bufL)
		if err != nil {
			continue
		}
		values = append(values, v)
	}
	if len(values) < resamples/2 {
		return Interval{}, fmt.Errorf("%w: statistic defined on only %d/%d resamples",
			ErrDegenerate, len(values), resamples)
	}
	sort.Float64s(values)
	alpha := (1 - level) / 2
	return Interval{
		Lo:    Quantile(values, alpha),
		Hi:    Quantile(values, 1-alpha),
		Level: level,
	}, nil
}
