package stat

import (
	"fmt"
	"math"
	"sort"
)

// KDE is a Gaussian-kernel density estimate — the non-parametric
// alternative to the paper's Gaussian MLE densities, used by the density
// ablation to check how much the normality assumption matters.
type KDE struct {
	xs        []float64
	bandwidth float64
}

// NewKDE builds a KDE over the sample. A non-positive bandwidth selects
// Silverman's rule of thumb h = 1.06·σ̂·n^(−1/5) (floored for degenerate
// samples).
func NewKDE(xs []float64, bandwidth float64) (*KDE, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	owned := make([]float64, len(xs))
	copy(owned, xs)
	sort.Float64s(owned)
	if bandwidth <= 0 {
		sigma := PopStdDev(owned)
		bandwidth = 1.06 * sigma * math.Pow(float64(len(owned)), -0.2)
		const floor = 1e-3
		if bandwidth < floor {
			bandwidth = floor
		}
	}
	return &KDE{xs: owned, bandwidth: bandwidth}, nil
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// PDF returns the estimated density at x.
func (k *KDE) PDF(x float64) float64 {
	var sum float64
	h := k.bandwidth
	norm := 1 / (h * math.Sqrt(2*math.Pi))
	for _, xi := range k.xs {
		z := (x - xi) / h
		sum += norm * math.Exp(-0.5*z*z)
	}
	return sum / float64(len(k.xs))
}

// CDF returns the estimated distribution function at x.
func (k *KDE) CDF(x float64) float64 {
	var sum float64
	h := k.bandwidth
	for _, xi := range k.xs {
		sum += 0.5 * math.Erfc(-(x-xi)/(h*math.Sqrt2))
	}
	return sum / float64(len(k.xs))
}

// UpperTail returns 1 − CDF(x).
func (k *KDE) UpperTail(x float64) float64 {
	return 1 - k.CDF(x)
}

// CrossPDFs finds the point in [lo, hi] where density a falls below
// density b — the decision threshold between a "low" density a and a
// "high" density b. It scans a grid for the sign change of a−b nearest to
// where both densities carry mass, then refines by bisection. ok is false
// when the densities never cross inside the interval.
func CrossPDFs(a, b func(float64) float64, lo, hi float64) (float64, error) {
	if hi <= lo {
		return 0, fmt.Errorf("%w: empty interval [%v,%v]", ErrNoIntersection, lo, hi)
	}
	const grid = 512
	step := (hi - lo) / grid
	type crossing struct{ x0, x1 float64 }
	var crossings []crossing
	prev := a(lo) - b(lo)
	for i := 1; i <= grid; i++ {
		x := lo + float64(i)*step
		cur := a(x) - b(x)
		if (prev > 0 && cur <= 0) || (prev < 0 && cur >= 0) {
			crossings = append(crossings, crossing{x0: x - step, x1: x})
		}
		prev = cur
	}
	if len(crossings) == 0 {
		return 0, fmt.Errorf("%w: no sign change in [%v,%v]", ErrNoIntersection, lo, hi)
	}
	// Prefer the crossing where the combined density is largest — the
	// decision boundary between the two populated modes, not a crossing
	// in the far tails.
	best := crossings[0]
	bestMass := -1.0
	for _, c := range crossings {
		mid := 0.5 * (c.x0 + c.x1)
		if m := a(mid) + b(mid); m > bestMass {
			best, bestMass = c, m
		}
	}
	x0, x1 := best.x0, best.x1
	for i := 0; i < 100; i++ {
		mid := 0.5 * (x0 + x1)
		d0 := a(x0) - b(x0)
		dm := a(mid) - b(mid)
		if (d0 > 0) == (dm > 0) {
			x0 = mid
		} else {
			x1 = mid
		}
	}
	return 0.5 * (x0 + x1), nil
}
