package stat

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with n bins over [lo, hi). It panics if
// n < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic(fmt.Sprintf("stat: histogram needs >= 1 bin, got %d", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stat: histogram interval [%v,%v) is empty", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records x. Values outside [Lo, Hi) are clamped into the edge bins so
// totals stay consistent for density estimation on bounded measures.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// AddAll records every value in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Counts))
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Density returns the estimated probability density at bin i, normalized so
// the histogram integrates to 1.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / (float64(h.total) * h.BinWidth())
}

// Mode returns the center of the fullest bin, or NaN when empty.
func (h *Histogram) Mode() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.BinCenter(best)
}
