package stat

import "math"

// Online accumulates mean and variance incrementally (Welford's
// algorithm) — the right shape for appliances that observe one quality
// value at a time and cannot store a growing sample. The zero value is an
// empty accumulator ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance (divide-by-n), the MLE
// the paper's analysis uses; 0 with fewer than two observations.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Gaussian returns the running MLE Gaussian with the same sigma floor as
// FitGaussianMLE, or ErrNoData when empty.
func (o *Online) Gaussian() (Gaussian, error) {
	if o.n == 0 {
		return Gaussian{}, ErrNoData
	}
	sigma := o.StdDev()
	const sigmaFloor = 1e-6
	if sigma < sigmaFloor {
		sigma = sigmaFloor
	}
	return Gaussian{Mu: o.mean, Sigma: sigma}, nil
}

// Decayed is an exponentially weighted variant of Online: old
// observations fade with factor Lambda per Add, so the statistics track a
// drifting distribution. Build with NewDecayed.
type Decayed struct {
	lambda float64
	weight float64
	mean   float64
	m2     float64
}

// NewDecayed returns an EW accumulator; lambda ∈ (0,1] is the retention
// per observation (1 = no forgetting). It panics on an out-of-range
// lambda — a programming error.
func NewDecayed(lambda float64) *Decayed {
	if lambda <= 0 || lambda > 1 {
		panic("stat: decay lambda outside (0,1]")
	}
	return &Decayed{lambda: lambda}
}

// Add folds one observation in, fading prior weight by lambda.
// The update is West's weighted incremental algorithm with the entire
// history's weight (and second moment) scaled by lambda first.
func (d *Decayed) Add(x float64) {
	prior := d.lambda * d.weight
	d.m2 *= d.lambda
	d.weight = prior + 1
	delta := x - d.mean
	r := delta / d.weight
	d.mean += r
	d.m2 += prior * delta * r
	if d.m2 < 0 {
		d.m2 = 0
	}
}

// Weight returns the effective sample weight.
func (d *Decayed) Weight() float64 { return d.weight }

// Mean returns the exponentially weighted mean.
func (d *Decayed) Mean() float64 { return d.mean }

// Variance returns the exponentially weighted population variance.
func (d *Decayed) Variance() float64 {
	if d.weight < 2 {
		return 0
	}
	return d.m2 / d.weight
}

// StdDev returns the exponentially weighted standard deviation.
func (d *Decayed) StdDev() float64 { return math.Sqrt(d.Variance()) }

// Gaussian returns the EW Gaussian with a sigma floor, or ErrNoData when
// no observation has been added.
func (d *Decayed) Gaussian() (Gaussian, error) {
	if d.weight == 0 {
		return Gaussian{}, ErrNoData
	}
	sigma := d.StdDev()
	const sigmaFloor = 1e-6
	if sigma < sigmaFloor {
		sigma = sigmaFloor
	}
	return Gaussian{Mu: d.mean, Sigma: sigma}, nil
}
