// Package stat implements the statistical analysis layer of the CQM paper
// (§2.3): maximum-likelihood estimation of Gaussian densities for the
// quality values of right and wrong classifications, the optimal threshold
// at the intersection of the two densities, and the acceptance/rejection
// probabilities computed from Gaussian CDF "median cuts".
//
// It also provides the generic statistical utilities the rest of the
// repository needs: descriptive statistics, histograms, confusion-matrix
// metrics, and ROC/AUC analysis for evaluating quality thresholds.
package stat
