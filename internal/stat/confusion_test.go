package stat

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionZeroValueUsable(t *testing.T) {
	var c Confusion
	if c.Total() != 0 || c.Accuracy() != 0 {
		t.Error("zero-value Confusion not empty")
	}
	c.Record("writing", "writing")
	if c.Total() != 1 {
		t.Errorf("Total = %d, want 1", c.Total())
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	// 3 classes; writing: 8 correct, 2 confused as playing.
	for i := 0; i < 8; i++ {
		c.Record("writing", "writing")
	}
	for i := 0; i < 2; i++ {
		c.Record("writing", "playing")
	}
	// playing: 6 correct, 1 confused as writing.
	for i := 0; i < 6; i++ {
		c.Record("playing", "playing")
	}
	c.Record("playing", "writing")
	// lying: 5 correct.
	for i := 0; i < 5; i++ {
		c.Record("lying", "lying")
	}

	if got := c.Total(); got != 22 {
		t.Fatalf("Total = %d, want 22", got)
	}
	if got := c.Accuracy(); math.Abs(got-19.0/22.0) > 1e-12 {
		t.Errorf("Accuracy = %v, want %v", got, 19.0/22.0)
	}
	// writing predicted 9 times, 8 correct.
	if got := c.Precision("writing"); math.Abs(got-8.0/9.0) > 1e-12 {
		t.Errorf("Precision(writing) = %v", got)
	}
	// writing actual 10 times, 8 recalled.
	if got := c.Recall("writing"); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Recall(writing) = %v", got)
	}
	p, r := 8.0/9.0, 0.8
	if got := c.F1("writing"); math.Abs(got-2*p*r/(p+r)) > 1e-12 {
		t.Errorf("F1(writing) = %v", got)
	}
	if got := c.Precision("never-predicted"); got != 0 {
		t.Errorf("Precision(unknown) = %v, want 0", got)
	}
	if got := c.Recall("never-actual"); got != 0 {
		t.Errorf("Recall(unknown) = %v, want 0", got)
	}
}

func TestConfusionLabelsSorted(t *testing.T) {
	var c Confusion
	c.Record("writing", "lying")
	c.Record("playing", "playing")
	got := c.Labels()
	want := []string{"lying", "playing", "writing"}
	if len(got) != len(want) {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", got, want)
		}
	}
}

func TestConfusionString(t *testing.T) {
	var c Confusion
	if s := c.String(); !strings.Contains(s, "empty") {
		t.Errorf("empty String = %q", s)
	}
	c.Record("a", "b")
	s := c.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Errorf("String missing labels: %q", s)
	}
}

func TestROCPerfectSeparation(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	pos := []bool{false, false, true, true}
	curve := ROC(scores, pos)
	if len(curve) == 0 {
		t.Fatal("empty ROC")
	}
	if auc := AUC(curve); math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %v, want 1 for perfect separation", auc)
	}
}

func TestROCChanceLevel(t *testing.T) {
	// Scores identical for both classes: AUC must be 0.5.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	pos := []bool{true, false, true, false}
	if auc := AUC(ROC(scores, pos)); math.Abs(auc-0.5) > 1e-9 {
		t.Errorf("AUC = %v, want 0.5", auc)
	}
}

func TestROCInverted(t *testing.T) {
	// Scores anti-correlated with the labels: AUC ~ 0.
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	pos := []bool{false, false, true, true}
	if auc := AUC(ROC(scores, pos)); auc > 1e-9 {
		t.Errorf("AUC = %v, want 0", auc)
	}
}

func TestROCEmptyAndMismatched(t *testing.T) {
	if ROC(nil, nil) != nil {
		t.Error("ROC(nil) should be nil")
	}
	if ROC([]float64{1}, []bool{true, false}) != nil {
		t.Error("mismatched lengths should return nil")
	}
}

func TestROCRatesAreValid(t *testing.T) {
	scores := []float64{0.3, 0.5, 0.5, 0.7, 0.2, 0.95}
	pos := []bool{false, true, false, true, false, true}
	for _, p := range ROC(scores, pos) {
		if p.TPR < 0 || p.TPR > 1 || p.FPR < 0 || p.FPR > 1 {
			t.Errorf("invalid rates: %+v", p)
		}
	}
}
