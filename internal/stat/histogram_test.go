package stat

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.AddAll([]float64{0.05, 0.15, 0.15, 0.95})
	if h.Total() != 4 {
		t.Fatalf("Total = %d, want 4", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if got := h.BinWidth(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("BinWidth = %v", got)
	}
	if got := h.BinCenter(1); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("BinCenter(1) = %v", got)
	}
	if got := h.Mode(); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("Mode = %v", got)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(5)
	h.Add(1) // hi boundary is exclusive → clamped into the last bin
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Errorf("Counts = %v", h.Counts)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := NewHistogram(0, 1, 20)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		h.Add(r.Float64())
	}
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("density integral = %v, want 1", integral)
	}
}

func TestHistogramEmptyMode(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Mode()) {
		t.Error("empty Mode should be NaN")
	}
	if h.Density(0) != 0 {
		t.Error("empty Density should be 0")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 0},
		{1, 1, 4},
		{2, 1, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.n)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.n)
		}()
	}
}
