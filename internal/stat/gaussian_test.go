package stat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGaussianRejectsBadSigma(t *testing.T) {
	for _, sigma := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewGaussian(0, sigma); !errors.Is(err, ErrDegenerate) {
			t.Errorf("sigma=%v: err = %v, want ErrDegenerate", sigma, err)
		}
	}
	if _, err := NewGaussian(1, 2); err != nil {
		t.Errorf("valid sigma rejected: %v", err)
	}
}

func TestGaussianPDFKnownValues(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 1}
	// φ(0) for the standard normal is 1/√(2π) ≈ 0.3989422804.
	if got := g.PDF(0); math.Abs(got-0.3989422804014327) > 1e-12 {
		t.Errorf("PDF(0) = %v", got)
	}
	// Symmetry.
	if math.Abs(g.PDF(1.3)-g.PDF(-1.3)) > 1e-15 {
		t.Error("PDF not symmetric")
	}
}

func TestGaussianCDFKnownValues(t *testing.T) {
	g := Gaussian{Mu: 0, Sigma: 1}
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
	}
	for _, tt := range tests {
		if got := g.CDF(tt.x); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestGaussianTailsSumToOne(t *testing.T) {
	g := Gaussian{Mu: 0.8, Sigma: 0.2}
	for _, x := range []float64{0, 0.5, 0.8, 1.0, 2.0} {
		if s := g.CDF(x) + g.UpperTail(x); math.Abs(s-1) > 1e-12 {
			t.Errorf("CDF+UpperTail at %v = %v, want 1", x, s)
		}
	}
}

func TestGaussianQuantileInvertsCDF(t *testing.T) {
	g := Gaussian{Mu: 2, Sigma: 0.7}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		x := g.Quantile(p)
		if got := g.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(g.Quantile(0), -1) || !math.IsInf(g.Quantile(1), 1) {
		t.Error("Quantile at 0/1 should be infinite")
	}
}

func TestFitGaussianMLE(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	g, err := FitGaussianMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mu-3) > 1e-12 {
		t.Errorf("Mu = %v, want 3", g.Mu)
	}
	// MLE divides by n: variance = 2, sigma = sqrt(2).
	if math.Abs(g.Sigma-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Sigma = %v, want sqrt(2)", g.Sigma)
	}
}

func TestFitGaussianMLEEmptyAndConstant(t *testing.T) {
	if _, err := FitGaussianMLE(nil); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	g, err := FitGaussianMLE([]float64{0.7, 0.7, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if g.Sigma <= 0 {
		t.Errorf("constant sample produced sigma = %v, want floor > 0", g.Sigma)
	}
}

func TestFitGaussianMLERecoversParams(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	want := Gaussian{Mu: 0.81, Sigma: 0.05}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = want.Mu + want.Sigma*r.NormFloat64()
	}
	g, err := FitGaussianMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mu-want.Mu) > 0.002 {
		t.Errorf("Mu = %v, want ~%v", g.Mu, want.Mu)
	}
	if math.Abs(g.Sigma-want.Sigma) > 0.002 {
		t.Errorf("Sigma = %v, want ~%v", g.Sigma, want.Sigma)
	}
}

func TestIntersectEqualVariance(t *testing.T) {
	a := Gaussian{Mu: 0, Sigma: 1}
	b := Gaussian{Mu: 2, Sigma: 1}
	x, err := Intersect(a, b, -10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1) > 1e-12 {
		t.Errorf("Intersect = %v, want 1", x)
	}
}

func TestIntersectIsDensityCrossing(t *testing.T) {
	// Paper-like configuration: wrong classifications around a low quality
	// mean, right ones near 1 with a tighter spread.
	wrong := Gaussian{Mu: 0.45, Sigma: 0.18}
	right := Gaussian{Mu: 0.95, Sigma: 0.07}
	s, err := Intersect(wrong, right, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= wrong.Mu || s >= right.Mu {
		t.Errorf("threshold %v not between the means (%v, %v)", s, wrong.Mu, right.Mu)
	}
	if d := math.Abs(wrong.PDF(s) - right.PDF(s)); d > 1e-6 {
		t.Errorf("densities differ by %v at the intersection", d)
	}
}

func TestIntersectPrefersRootBetweenMeans(t *testing.T) {
	a := Gaussian{Mu: 0.3, Sigma: 0.25}
	b := Gaussian{Mu: 0.9, Sigma: 0.05}
	s, err := Intersect(a, b, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.3 || s > 0.9 {
		t.Errorf("threshold %v outside the means", s)
	}
}

func TestIntersectErrors(t *testing.T) {
	a := Gaussian{Mu: 0, Sigma: 1}
	b := Gaussian{Mu: 4, Sigma: 1}
	if _, err := Intersect(a, b, 0, 0); !errors.Is(err, ErrNoIntersection) {
		t.Errorf("empty interval: err = %v", err)
	}
	// Crossing at 2 is outside [10, 20].
	if _, err := Intersect(a, b, 10, 20); !errors.Is(err, ErrNoIntersection) {
		t.Errorf("out-of-interval: err = %v", err)
	}
	// Identical distributions never cross.
	if _, err := Intersect(a, a, -5, 5); !errors.Is(err, ErrNoIntersection) {
		t.Errorf("identical: err = %v", err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(mu float64, rawSigma float64, x1, x2 float64) bool {
		// Keep parameters in a physically sensible range; quality measures
		// live in [0,1] and extreme magnitudes overflow (x−µ)².
		for _, v := range []float64{mu, rawSigma, x1, x2} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true
			}
		}
		sigma := math.Abs(rawSigma) + 0.01
		g := Gaussian{Mu: mu, Sigma: sigma}
		lo, hi := x1, x2
		if lo > hi {
			lo, hi = hi, lo
		}
		return g.CDF(lo) <= g.CDF(hi)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPDFIntegratesToOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := Gaussian{Mu: r.Float64()*4 - 2, Sigma: 0.05 + r.Float64()}
		// Simpson integration over ±10σ.
		lo := g.Mu - 10*g.Sigma
		hi := g.Mu + 10*g.Sigma
		n := 2000
		h := (hi - lo) / float64(n)
		sum := g.PDF(lo) + g.PDF(hi)
		for i := 1; i < n; i++ {
			x := lo + float64(i)*h
			if i%2 == 1 {
				sum += 4 * g.PDF(x)
			} else {
				sum += 2 * g.PDF(x)
			}
		}
		integral := sum * h / 3
		return math.Abs(integral-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
