package stat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	var o Online
	for i := range xs {
		xs[i] = r.NormFloat64()*2 + 3
		o.Add(xs[i])
	}
	if o.N() != 500 {
		t.Fatalf("N = %d", o.N())
	}
	if math.Abs(o.Mean()-Mean(xs)) > 1e-12 {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if math.Abs(o.StdDev()-PopStdDev(xs)) > 1e-10 {
		t.Errorf("online stddev %v vs batch %v", o.StdDev(), PopStdDev(xs))
	}
	g, err := o.Gaussian()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := FitGaussianMLE(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mu-batch.Mu) > 1e-12 || math.Abs(g.Sigma-batch.Sigma) > 1e-10 {
		t.Errorf("online Gaussian %+v vs batch %+v", g, batch)
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.N() != 0 {
		t.Error("zero value not empty")
	}
	if _, err := o.Gaussian(); !errors.Is(err, ErrNoData) {
		t.Errorf("empty Gaussian: %v", err)
	}
	o.Add(5)
	if o.Mean() != 5 || o.Variance() != 0 {
		t.Error("single observation stats wrong")
	}
}

func TestDecayedNoForgettingMatchesOnline(t *testing.T) {
	// Lambda 1 = plain Welford.
	r := rand.New(rand.NewSource(2))
	d := NewDecayed(1)
	var o Online
	for i := 0; i < 300; i++ {
		x := r.NormFloat64()
		d.Add(x)
		o.Add(x)
	}
	if math.Abs(d.Mean()-o.Mean()) > 1e-10 {
		t.Errorf("means differ: %v vs %v", d.Mean(), o.Mean())
	}
	if math.Abs(d.StdDev()-o.StdDev()) > 1e-8 {
		t.Errorf("stddevs differ: %v vs %v", d.StdDev(), o.StdDev())
	}
}

func TestDecayedTracksDrift(t *testing.T) {
	// The distribution jumps from 0.2 to 0.9; the decayed mean must
	// follow while the plain online mean lags in between.
	d := NewDecayed(0.9)
	var o Online
	for i := 0; i < 200; i++ {
		d.Add(0.2)
		o.Add(0.2)
	}
	for i := 0; i < 60; i++ {
		d.Add(0.9)
		o.Add(0.9)
	}
	if d.Mean() < 0.85 {
		t.Errorf("decayed mean %v has not followed the drift to 0.9", d.Mean())
	}
	if o.Mean() > 0.5 {
		t.Errorf("plain online mean %v moved implausibly fast", o.Mean())
	}
}

func TestDecayedGaussianAndErrors(t *testing.T) {
	d := NewDecayed(0.95)
	if _, err := d.Gaussian(); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v", err)
	}
	d.Add(0.5)
	d.Add(0.7)
	g, err := d.Gaussian()
	if err != nil {
		t.Fatal(err)
	}
	if g.Sigma <= 0 {
		t.Errorf("sigma = %v", g.Sigma)
	}
	if d.Weight() <= 1 || d.Weight() > 2 {
		t.Errorf("weight = %v", d.Weight())
	}
}

func TestNewDecayedPanics(t *testing.T) {
	for _, lambda := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("lambda %v did not panic", lambda)
				}
			}()
			NewDecayed(lambda)
		}()
	}
}

func TestOnlineVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var o Online
		d := NewDecayed(0.5 + r.Float64()/2)
		for i := 0; i < 50; i++ {
			x := r.NormFloat64() * math.Pow(10, float64(r.Intn(5)))
			o.Add(x)
			d.Add(x)
			if o.Variance() < 0 || d.Variance() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
