package stat

import (
	"errors"
	"fmt"
	"math"
)

// Gaussian is a univariate normal distribution N(Mu, Sigma²).
type Gaussian struct {
	Mu    float64
	Sigma float64
}

// Statistical estimation errors.
var (
	// ErrNoData reports an estimation attempt over an empty sample.
	ErrNoData = errors.New("stat: no data")
	// ErrDegenerate reports a distribution with non-positive variance where
	// positive variance is required.
	ErrDegenerate = errors.New("stat: degenerate distribution")
	// ErrNoIntersection reports that two densities do not intersect inside
	// the requested interval.
	ErrNoIntersection = errors.New("stat: densities do not intersect in interval")
)

// NewGaussian returns N(mu, sigma²). It returns ErrDegenerate for
// non-positive sigma.
func NewGaussian(mu, sigma float64) (Gaussian, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return Gaussian{}, fmt.Errorf("%w: sigma = %v", ErrDegenerate, sigma)
	}
	return Gaussian{Mu: mu, Sigma: sigma}, nil
}

// PDF returns the probability density φ_{µ,σ}(x) (paper §2.3.1).
func (g Gaussian) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return math.Exp(-0.5*z*z) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns Φ_{µ,σ}(x) = ∫_{−∞}^{x} φ(t) dt, the paper's lower median cut.
func (g Gaussian) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-g.Mu)/(g.Sigma*math.Sqrt2))
}

// UpperTail returns Φ̄_{µ,σ}(x) = ∫_{x}^{∞} φ(t) dt, the paper's upper
// median cut.
func (g Gaussian) UpperTail(x float64) float64 {
	return 0.5 * math.Erfc((x-g.Mu)/(g.Sigma*math.Sqrt2))
}

// Quantile returns the x with CDF(x) = p, computed by bisection. p outside
// (0,1) yields ±Inf.
func (g Gaussian) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	lo := g.Mu - 12*g.Sigma
	hi := g.Mu + 12*g.Sigma
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if g.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi)
}

// FitGaussianMLE returns the maximum-likelihood Gaussian for the sample:
// mean µ̂ = Σx/n and σ̂² = Σ(x−µ̂)²/n (the MLE uses n, not n−1; paper
// §2.3.1 argues MLE is the right estimator for the small evaluation sets).
// A minimum sigma floor keeps single-point and constant samples usable.
func FitGaussianMLE(xs []float64) (Gaussian, error) {
	if len(xs) == 0 {
		return Gaussian{}, ErrNoData
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(xs)))
	const sigmaFloor = 1e-6
	if sigma < sigmaFloor {
		sigma = sigmaFloor
	}
	return Gaussian{Mu: mu, Sigma: sigma}, nil
}

// Intersect returns the intersection point of the two density functions
// inside [lo, hi]: the x where a.PDF(x) == b.PDF(x). When both roots of the
// underlying quadratic fall inside the interval the one between the two
// means is preferred (that is the decision threshold the paper wants).
func Intersect(a, b Gaussian, lo, hi float64) (float64, error) {
	if lo >= hi {
		return 0, fmt.Errorf("%w: empty interval [%v,%v]", ErrNoIntersection, lo, hi)
	}
	roots := intersectionRoots(a, b)
	inMeans := func(x float64) bool {
		low, high := math.Min(a.Mu, b.Mu), math.Max(a.Mu, b.Mu)
		return x >= low && x <= high
	}
	var candidates []float64
	for _, r := range roots {
		if r >= lo && r <= hi {
			candidates = append(candidates, r)
		}
	}
	switch len(candidates) {
	case 0:
		return 0, fmt.Errorf("%w: roots %v outside [%v,%v]", ErrNoIntersection, roots, lo, hi)
	case 1:
		return candidates[0], nil
	default:
		for _, c := range candidates {
			if inMeans(c) {
				return c, nil
			}
		}
		return candidates[0], nil
	}
}

// intersectionRoots solves log φ_a(x) = log φ_b(x), a quadratic in x.
func intersectionRoots(a, b Gaussian) []float64 {
	sa2 := a.Sigma * a.Sigma
	sb2 := b.Sigma * b.Sigma
	if math.Abs(sa2-sb2) < 1e-15*(sa2+sb2) {
		// Equal variances: a single midpoint root.
		if a.Mu == b.Mu { //lint:ignore floatcmp equal-parameter degeneracy check; epsilon would merge distinct distributions
			return nil
		}
		return []float64{0.5 * (a.Mu + b.Mu)}
	}
	// A x² + B x + C = 0 with:
	A := 1/(2*sb2) - 1/(2*sa2)
	B := a.Mu/sa2 - b.Mu/sb2
	C := b.Mu*b.Mu/(2*sb2) - a.Mu*a.Mu/(2*sa2) + math.Log(b.Sigma/a.Sigma)
	disc := B*B - 4*A*C
	if disc < 0 {
		return nil
	}
	sq := math.Sqrt(disc)
	return []float64{(-B - sq) / (2 * A), (-B + sq) / (2 * A)}
}
