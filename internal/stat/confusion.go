package stat

import (
	"fmt"
	"sort"
	"strings"
)

// Confusion is a multi-class confusion matrix keyed by class label.
// The zero value is ready to use.
type Confusion struct {
	counts map[string]map[string]int // actual -> predicted -> count
	labels map[string]struct{}
}

// Record adds one (actual, predicted) observation.
func (c *Confusion) Record(actual, predicted string) {
	if c.counts == nil {
		c.counts = make(map[string]map[string]int)
		c.labels = make(map[string]struct{})
	}
	row := c.counts[actual]
	if row == nil {
		row = make(map[string]int)
		c.counts[actual] = row
	}
	row[predicted]++
	c.labels[actual] = struct{}{}
	c.labels[predicted] = struct{}{}
}

// Count returns the number of observations with the given actual and
// predicted labels.
func (c *Confusion) Count(actual, predicted string) int {
	return c.counts[actual][predicted]
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	var n int
	for _, row := range c.counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Labels returns the sorted set of labels seen as actual or predicted.
func (c *Confusion) Labels() []string {
	out := make([]string, 0, len(c.labels))
	for l := range c.labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Accuracy returns the fraction of observations on the diagonal, or 0 when
// empty.
func (c *Confusion) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	var correct int
	for label, row := range c.counts {
		correct += row[label]
	}
	return float64(correct) / float64(total)
}

// Precision returns TP/(TP+FP) for the given label, or 0 when the label was
// never predicted.
func (c *Confusion) Precision(label string) float64 {
	var tp, predicted int
	for actual, row := range c.counts {
		n := row[label]
		predicted += n
		if actual == label {
			tp += n
		}
	}
	if predicted == 0 {
		return 0
	}
	return float64(tp) / float64(predicted)
}

// Recall returns TP/(TP+FN) for the given label, or 0 when the label never
// occurred.
func (c *Confusion) Recall(label string) float64 {
	row := c.counts[label]
	var actual int
	for _, n := range row {
		actual += n
	}
	if actual == 0 {
		return 0
	}
	return float64(row[label]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for the label.
func (c *Confusion) F1(label string) float64 {
	p := c.Precision(label)
	r := c.Recall(label)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix as an aligned table with actual classes as rows.
func (c *Confusion) String() string {
	labels := c.Labels()
	if len(labels) == 0 {
		return "(empty confusion matrix)"
	}
	width := 10
	for _, l := range labels {
		if len(l)+2 > width {
			width = len(l) + 2
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%*s", width, "act\\pred")
	for _, l := range labels {
		fmt.Fprintf(&sb, "%*s", width, l)
	}
	sb.WriteByte('\n')
	for _, actual := range labels {
		fmt.Fprintf(&sb, "%*s", width, actual)
		for _, predicted := range labels {
			fmt.Fprintf(&sb, "%*d", width, c.Count(actual, predicted))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
