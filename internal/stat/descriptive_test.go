package stat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"symmetric", []float64{-1, 1}, 0},
		{"typical", []float64{1, 2, 3, 4}, 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); got != tt.want {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance (n−1): 32/7.
	if got := Variance(xs); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	// Population variance (n): 4 → stddev 2.
	if got := PopStdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("PopStdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = (%v, %v)", min, max)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd Median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 {
		t.Error("Median mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.125, 15},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestZeroCrossings(t *testing.T) {
	// Alternating signal crosses its mean between every pair of samples.
	xs := []float64{1, -1, 1, -1, 1}
	if got := ZeroCrossings(xs); got != 4 {
		t.Errorf("ZeroCrossings = %d, want 4", got)
	}
	if got := ZeroCrossings([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant signal ZeroCrossings = %d, want 0", got)
	}
	if got := ZeroCrossings([]float64{1}); got != 0 {
		t.Errorf("singleton ZeroCrossings = %d, want 0", got)
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", got)
	}
	if RMS(nil) != 0 {
		t.Error("RMS(nil) != 0")
	}
}

func TestMeanShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = xs[i] + shift
		}
		// Shifting moves the mean but not the spread.
		meanOK := math.Abs(Mean(ys)-(Mean(xs)+shift)) < 1e-6
		stdOK := math.Abs(StdDev(ys)-StdDev(xs)) < 1e-6
		return meanOK && stdOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileBoundsProperty(t *testing.T) {
	f := func(seed int64, rawP float64) bool {
		p := math.Mod(math.Abs(rawP), 1)
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		q := Quantile(xs, p)
		min, max := MinMax(xs)
		return q >= min-1e-12 && q <= max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
