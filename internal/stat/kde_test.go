package stat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// almostEqual compares floats with a tolerance suited to the unit-scale
// values these tests assert on.
func almostEqual(a, b float64) bool { return math.Abs(a-b) <= 1e-12 }

func TestKDEEmpty(t *testing.T) {
	if _, err := NewKDE(nil, 0); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 0.5 + 0.1*r.NormFloat64()
	}
	k, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simpson over a wide window.
	lo, hi := -2.0, 3.0
	n := 4000
	h := (hi - lo) / float64(n)
	sum := k.PDF(lo) + k.PDF(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * k.PDF(x)
		} else {
			sum += 2 * k.PDF(x)
		}
	}
	if integral := sum * h / 3; math.Abs(integral-1) > 1e-6 {
		t.Errorf("KDE integral = %v", integral)
	}
}

func TestKDECDFMatchesPDF(t *testing.T) {
	xs := []float64{0.2, 0.4, 0.6, 0.8}
	k, err := NewKDE(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(k.Bandwidth(), 0.05) {
		t.Errorf("Bandwidth = %v", k.Bandwidth())
	}
	// CDF spans 0→1 and is monotone.
	if k.CDF(-5) > 1e-9 || k.CDF(5) < 1-1e-9 {
		t.Errorf("CDF tails: %v, %v", k.CDF(-5), k.CDF(5))
	}
	prev := -1.0
	for x := -1.0; x <= 2.0; x += 0.05 {
		c := k.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		prev = c
	}
	if s := k.CDF(0.5) + k.UpperTail(0.5); math.Abs(s-1) > 1e-12 {
		t.Errorf("CDF+UpperTail = %v", s)
	}
}

func TestKDERecoverGaussianMean(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 0.81 + 0.05*r.NormFloat64()
	}
	k, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The KDE's mode should sit near the true mean.
	bestX, bestD := 0.0, -1.0
	for x := 0.0; x <= 1.5; x += 0.002 {
		if d := k.PDF(x); d > bestD {
			bestX, bestD = x, d
		}
	}
	if math.Abs(bestX-0.81) > 0.02 {
		t.Errorf("mode = %v, want ~0.81", bestX)
	}
}

func TestKDEConstantSampleUsable(t *testing.T) {
	k, err := NewKDE([]float64{0.7, 0.7, 0.7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.PDF(0.7) <= 0 {
		t.Error("degenerate sample gave zero density at its value")
	}
}

func TestCrossPDFsMatchesGaussianIntersect(t *testing.T) {
	wrong := Gaussian{Mu: 0.3, Sigma: 0.15}
	right := Gaussian{Mu: 0.9, Sigma: 0.06}
	want, err := Intersect(wrong, right, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CrossPDFs(wrong.PDF, right.PDF, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("CrossPDFs = %v, Intersect = %v", got, want)
	}
}

func TestCrossPDFsErrors(t *testing.T) {
	g := Gaussian{Mu: 0.5, Sigma: 0.1}
	if _, err := CrossPDFs(g.PDF, g.PDF, 1, 0); !errors.Is(err, ErrNoIntersection) {
		t.Errorf("empty interval: %v", err)
	}
	// Identical densities never produce a sign change.
	if _, err := CrossPDFs(g.PDF, g.PDF, 0, 1); !errors.Is(err, ErrNoIntersection) {
		t.Errorf("identical: %v", err)
	}
}

func TestKDEThresholdSeparatesSamplesProperty(t *testing.T) {
	// For well-separated samples, the KDE crossing lands between the two
	// group means.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		low := make([]float64, 40)
		high := make([]float64, 40)
		for i := range low {
			low[i] = 0.2 + 0.05*r.NormFloat64()
			high[i] = 0.85 + 0.05*r.NormFloat64()
		}
		kl, err := NewKDE(low, 0)
		if err != nil {
			return false
		}
		kh, err := NewKDE(high, 0)
		if err != nil {
			return false
		}
		s, err := CrossPDFs(kl.PDF, kh.PDF, 0, 1)
		if err != nil {
			return false
		}
		return s > 0.3 && s < 0.8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
