module cqm

go 1.22
