// Command awarepen simulates the AwarePen appliance live: it trains the
// recognition stack, streams a scripted office session through the pen,
// and prints every context event with its quality annotation and the
// filter's decision — the paper's Figure 4 pipeline in motion.
//
// Usage:
//
//	awarepen [-seed N] [-style nominal|wild|light] [-threshold -1]
//	         [-progress] [-metrics-out metrics.json] [-fault none|stuck|saturation|dropout|spike|drift]
//	         [-model-watch file]
//
// A negative threshold uses the statistically optimal one. -progress logs
// one structured line per ANFIS training epoch; -metrics-out instruments
// the quality measure and the filter and dumps a JSON metrics snapshot on
// exit.
//
// -model-watch serves from a ckpt measure artifact (as written by
// cqmtrain) when one validates: the candidate is checksum- and
// smoke-checked, a bad or missing artifact falls back to the last-good
// copy beside it, and failing both the session runs on the freshly
// trained in-process model — the pen never starts without a model.
//
// -fault injects one sensor fault class into the live session and turns on
// degraded-input detection: windows whose readings carry the fault's
// signature are forced into the ε error state and discarded, showing the
// graceful-degradation path in the live table.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"

	"cqm/internal/ckpt"
	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/fault"
	"cqm/internal/feature"
	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	styleName := flag.String("style", "wild", "user style: nominal, wild, light")
	threshold := flag.Float64("threshold", -1, "acceptance threshold (negative = optimal)")
	progress := flag.Bool("progress", false, "log one structured line per ANFIS training epoch")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	qualityOut := flag.String("quality-out", "", "write a JSON quality report to this file on exit")
	faultName := flag.String("fault", "none", "sensor fault to inject live: none, stuck, saturation, dropout, spike, drift")
	modelWatch := flag.String("model-watch", "", "serve from this ckpt measure artifact, falling back to last-good, then to the in-process model")
	flag.Parse()

	if err := run(*seed, *styleName, *threshold, *progress, *metricsOut, *qualityOut, *faultName, *modelWatch); err != nil {
		fmt.Fprintln(os.Stderr, "awarepen:", err)
		os.Exit(1)
	}
}

// faultFor maps a -fault name to one injected sensor fault, or nil for
// "none".
func faultFor(name string) (fault.SensorFault, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "stuck":
		return &fault.StuckAxis{Axis: fault.AxisZ, Start: 8}, nil
	case "saturation":
		return &fault.Saturation{Gain: 4}, nil
	case "dropout":
		return &fault.Dropout{Start: 10, Duration: 3}, nil
	case "spike":
		return &fault.SpikeNoise{Prob: 0.3}, nil
	case "drift":
		return &fault.ClockDrift{Rate: 0.2}, nil
	default:
		return nil, fmt.Errorf("unknown fault %q", name)
	}
}

func run(seed int64, styleName string, threshold float64, progress bool, metricsOut, qualityOut, faultName, modelWatch string) error {
	style, err := styleFor(styleName)
	if err != nil {
		return err
	}
	injected, err := faultFor(faultName)
	if err != nil {
		return err
	}

	fmt.Println("training the AwarePen recognition stack …")
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 12},
			{Context: sensor.ContextWriting, Duration: 12},
			{Context: sensor.ContextPlaying, Duration: 12},
		}}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		return err
	}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		return err
	}
	observations, err := core.Observe(clf, mixed)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if metricsOut != "" {
		reg = obs.NewRegistry()
	}
	buildCfg := core.BuildConfig{Metrics: reg}
	if progress {
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		buildCfg.Observer = core.TrainObserverFuncs{
			OnEpoch: func(ev core.EpochEvent) {
				attrs := []any{
					"epoch", ev.Epoch,
					"train_rmse", ev.TrainRMSE,
					"rate", ev.LearningRate,
					"best", ev.Best,
				}
				if ev.HasCheck {
					attrs = append(attrs, "check_rmse", ev.CheckRMSE)
				}
				logger.Info("anfis epoch", attrs...)
			},
			OnStop: func(ev core.StopEvent) {
				logger.Info("anfis stop", "reason", string(ev.Reason),
					"epochs", ev.Epochs, "best_epoch", ev.BestEpoch)
			},
		}
	}
	measure, err := core.Build(observations, nil, buildCfg)
	if err != nil {
		return err
	}
	if modelWatch != "" {
		// Preference order: the watched artifact, its last-good copy, the
		// freshly trained in-process model — the pen never starts without a
		// model. The handle starts empty so a rejected candidate rolls back
		// to last-good instead of sticking with the in-process build.
		handle := ckpt.NewHandle(nil)
		watcher, err := ckpt.NewModelWatcher(ckpt.WatchConfig{Path: modelWatch, Metrics: reg}, handle)
		if err != nil {
			return err
		}
		swapped, pollErr := watcher.Poll()
		if pollErr != nil {
			fmt.Fprintf(os.Stderr, "awarepen: model watch: %v\n", pollErr)
		}
		switch m := handle.Load(); {
		case m != nil && swapped && pollErr == nil:
			fmt.Printf("serving model from %s\n", modelWatch)
			measure = m
		case m != nil:
			fmt.Println("serving the last-good model")
			measure = m
		default:
			fmt.Println("serving the in-process model")
		}
	}
	analysis, err := core.Analyze(measure, observations)
	if err != nil {
		return err
	}
	if threshold < 0 {
		threshold = analysis.Threshold
	}
	filter, err := core.NewFilter(measure, threshold)
	if err != nil {
		return err
	}
	filter.Instrument(reg)
	fmt.Printf("quality FIS ready: %d rules, threshold s = %.3f\n\n", measure.Rules(), threshold)

	// The quality analytics engine tracks the live decision stream against
	// the training-time densities.
	engine := quality.NewEngine(quality.Config{
		Threshold: threshold,
		Reference: quality.NewReference(analysis),
		Metrics:   reg,
	})

	// Live session.
	rng := rand.New(rand.NewSource(seed + 2))
	readings, err := sensor.OfficeSession(style).Run(rng)
	if err != nil {
		return err
	}
	var degrade *feature.DegradationConfig
	if injected != nil {
		inj := fault.NewInjector(seed+3, injected)
		if readings, err = inj.Apply(readings); err != nil {
			return err
		}
		degrade = &feature.DegradationConfig{}
		fmt.Printf("injected fault %q:\n%s\n", injected.Name(), inj.Render())
	}
	windows, err := (feature.Windower{Size: 100, Degradation: degrade}).Slide(readings)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-10s %-10s %-14s %-8s %s\n", "t [s]", "truth", "classified", "q", "decision", "cues (stddev x/y/z)")
	correctAccepted, accepted, correctTotal := 0, 0, 0
	for _, w := range windows {
		class, err := clf.Classify(w.Cues)
		if err != nil {
			return err
		}
		var d core.Decision
		if w.Degraded.Any() {
			// Degraded input: forced into ε, the quality never consulted.
			d = core.Decision{Epsilon: true}
		} else {
			if d, err = filter.Decide(w.Cues, class); err != nil {
				return err
			}
		}
		decision := "ACCEPT"
		if !d.Accepted {
			decision = "discard"
		}
		qStr := fmt.Sprintf("%.3f", d.Quality)
		if d.Epsilon {
			qStr = "ε"
			if w.Degraded.Any() {
				qStr = "ε:" + w.Degraded.String()
			}
		}
		engine.Observe(quality.Observation{
			Source:   "awarepen",
			At:       w.End,
			Q:        d.Quality,
			HasQ:     !d.Epsilon,
			Degraded: w.Degraded.Any(),
		})
		mark := " "
		if class != w.Truth {
			mark = "✗"
		}
		fmt.Printf("%-8.1f %-10s %-10s %-14s %-8s %.3f/%.3f/%.3f %s\n",
			w.End, w.Truth, class, qStr, decision, w.Cues[0], w.Cues[1], w.Cues[2], mark)
		if class == w.Truth {
			correctTotal++
		}
		if d.Accepted {
			accepted++
			if class == w.Truth {
				correctAccepted++
			}
		}
	}
	fmt.Printf("\nsession: %d windows, raw accuracy %.2f", len(windows),
		float64(correctTotal)/float64(len(windows)))
	if accepted > 0 {
		fmt.Printf(", accepted accuracy %.2f (%d accepted)",
			float64(correctAccepted)/float64(accepted), accepted)
	}
	fmt.Println()
	rep := engine.Report()
	fmt.Printf("quality: health %s (score %.2f)", rep.Health, rep.HealthScore)
	for _, src := range rep.Sources {
		fmt.Printf(", window mean q %.3f, velocity %+.4f/s, trend %s", src.Window.Mean,
			src.Trends.DegradationVelocity, src.Trends.Direction)
		if src.PageHinkley.Fired > 0 {
			fmt.Printf(", %d drift alarm(s)", src.PageHinkley.Fired)
		}
	}
	fmt.Println()
	for _, a := range rep.Alerts {
		fmt.Printf("  alert [%s] %s: %s\n", a.Severity, a.Kind, a.Message)
	}
	if qualityOut != "" {
		data, err := json.MarshalIndent(quality.Snapshot{Report: rep}, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding quality snapshot: %w", err)
		}
		if err := ckpt.AtomicWriteFile(qualityOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing quality snapshot: %w", err)
		}
		fmt.Printf("quality snapshot written to %s\n", qualityOut)
	}
	if metricsOut != "" {
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			return fmt.Errorf("writing metrics snapshot: %w", err)
		}
		if err := ckpt.AtomicWriteFile(metricsOut, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("writing metrics snapshot: %w", err)
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsOut)
	}
	return nil
}

func styleFor(name string) (sensor.Style, error) {
	switch name {
	case "nominal":
		return sensor.DefaultStyle(), nil
	case "wild":
		return sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}, nil
	case "light":
		return sensor.Style{Amplitude: 0.5, Tempo: 0.8, Irregularity: 0.5}, nil
	default:
		return sensor.Style{}, fmt.Errorf("unknown style %q", name)
	}
}
