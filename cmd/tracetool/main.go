// Command tracetool records, inspects and converts AwarePen sensor
// traces — the data-management workflow around the binary trace format.
//
// Usage:
//
//	tracetool record  -out session.trace [-seed N] [-style nominal|wild|light] [-scenario office]
//	tracetool info    -in session.trace
//	tracetool csv     -in session.trace [-window 100]
//	tracetool quality -in quality.json [-traces=false]
//
// `record` captures a simulated session, `info` prints a summary, `csv`
// windows the trace into labelled stddev cues on stdout (the input
// format cqmtrain accepts with -data), and `quality` pretty-prints a
// quality snapshot written by `awareoffice -quality-out` (or the
// /quality endpoint), including sampled end-to-end pipeline traces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cqm/internal/dataset"
	"cqm/internal/feature"
	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
	"cqm/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fail(fmt.Errorf("usage: tracetool record|info|csv [flags]"))
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "csv":
		err = toCSV(os.Args[2:])
	case "quality":
		err = qualityCmd(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracetool:", err)
	os.Exit(1)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "session.trace", "output trace file")
	seed := fs.Int64("seed", 1, "simulation seed")
	styleName := fs.String("style", "nominal", "user style: nominal, wild, light")
	if err := fs.Parse(args); err != nil {
		return err
	}
	style, err := styleFor(*styleName)
	if err != nil {
		return err
	}
	readings, err := sensor.OfficeSession(style).Run(rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, readings); err != nil {
		return err
	}
	fmt.Printf("recorded %d readings (%.1f s) to %s\n",
		len(readings), readings[len(readings)-1].T, *out)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	readings, err := load(*in)
	if err != nil {
		return err
	}
	counts := make(map[sensor.Context]int)
	for _, r := range readings {
		counts[r.Truth]++
	}
	fmt.Printf("%d readings over %.2f s\n", len(readings), readings[len(readings)-1].T-readings[0].T)
	for _, c := range sensor.AllContexts() {
		if n := counts[c]; n > 0 {
			fmt.Printf("  %-8s %6d readings (%.1f s)\n", c, n, float64(n)*0.01)
		}
	}
	fmt.Printf("end-of-writing moments at: %v\n", endOfWriting(readings))
	return nil
}

func endOfWriting(readings []sensor.Reading) []float64 {
	var out []float64
	for i := 1; i < len(readings); i++ {
		if readings[i-1].Truth == sensor.ContextWriting && readings[i].Truth != sensor.ContextWriting {
			out = append(out, readings[i].T)
		}
	}
	return out
}

func toCSV(args []string) error {
	fs := flag.NewFlagSet("csv", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	window := fs.Int("window", 100, "readings per cue window")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	span := reg.StartSpan("tracetool_csv")
	readings, err := load(*in)
	if err != nil {
		return err
	}
	reg.Counter("tracetool_readings_total").Add(int64(len(readings)))
	windows, err := (feature.Windower{Size: *window}).Slide(readings)
	if err != nil {
		return err
	}
	reg.Counter("tracetool_windows_total").Add(int64(len(windows)))
	set := &dataset.Set{}
	for _, w := range windows {
		set.Append(dataset.Sample{Cues: w.Cues, Truth: w.Truth, Pure: w.Pure})
	}
	if err := set.WriteCSV(os.Stdout); err != nil {
		return err
	}
	span.End("readings", fmt.Sprint(len(readings)), "windows", fmt.Sprint(len(windows)))
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return fmt.Errorf("creating metrics snapshot: %w", err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return fmt.Errorf("writing metrics snapshot: %w", err)
		}
	}
	return nil
}

func qualityCmd(args []string) error {
	fs := flag.NewFlagSet("quality", flag.ExitOnError)
	in := fs.String("in", "", "quality snapshot JSON written by -quality-out or fetched from /quality")
	showTraces := fs.Bool("traces", true, "print sampled pipeline traces")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("missing -in")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var snap quality.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("parsing quality snapshot: %w", err)
	}
	if snap.Report == nil {
		return fmt.Errorf("%s: no quality report in snapshot", *in)
	}
	printReport(snap.Report)
	if *showTraces && len(snap.Traces) > 0 {
		printTraces(snap.Traces)
	}
	return nil
}

func printReport(rep *quality.Report) {
	fmt.Printf("health %s (score %.2f) at t=%.2f s, %d observations\n",
		rep.Health, rep.HealthScore, rep.At, rep.Observations)
	for _, src := range rep.Sources {
		fmt.Printf("  %s: %d obs, window mean q %.3f ± %.3f, accept %.0f%%, epsilon %.0f%%\n",
			src.Name, src.Observed, src.Window.Mean, src.Window.StdDev,
			100*src.Window.AcceptRate, 100*src.Window.EpsilonRate)
		fmt.Printf("    trend %s, volatility %s, velocity %+.4f q/s\n",
			src.Trends.Direction, src.Trends.Volatility, src.Trends.DegradationVelocity)
		if src.PageHinkley.Fired > 0 {
			fmt.Printf("    Page-Hinkley fired %d time(s):", src.PageHinkley.Fired)
			for _, ep := range src.PageHinkley.Epochs {
				fmt.Printf(" t=%.1f s (obs #%d)", ep.At, ep.Index)
			}
			fmt.Println()
		}
		if src.KS.Evaluated {
			verdict := "matches training mixture"
			if src.KS.Drifting {
				verdict = "DRIFTED from training mixture"
			}
			fmt.Printf("    KS D=%.3f (crit %.3f, n=%d): %s\n",
				src.KS.Stat, src.KS.Critical, src.KS.N, verdict)
		}
	}
	for _, a := range rep.Alerts {
		fmt.Printf("  [%s] %s/%s: %s — %s\n", a.Severity, a.Source, a.Kind, a.Message, a.Recommendation)
	}
}

func printTraces(traces []quality.Trace) {
	fmt.Printf("%d sampled pipeline trace(s):\n", len(traces))
	for _, tr := range traces {
		fmt.Printf("  seq %d from %s, start t=%.3f s\n", tr.Seq, tr.Source, tr.StartAt)
		prev := tr.StartAt
		for _, ev := range tr.Events {
			fmt.Printf("    %-10s t=%.3f s (+%.4f s)", ev.Stage, ev.At, ev.At-prev)
			if ev.Detail != "" {
				fmt.Printf("  %s", ev.Detail)
			}
			fmt.Println()
			prev = ev.At
		}
	}
}

func load(path string) ([]sensor.Reading, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -in")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func styleFor(name string) (sensor.Style, error) {
	switch name {
	case "nominal":
		return sensor.DefaultStyle(), nil
	case "wild":
		return sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}, nil
	case "light":
		return sensor.Style{Amplitude: 0.5, Tempo: 0.8, Irregularity: 0.5}, nil
	default:
		return sensor.Style{}, fmt.Errorf("unknown style %q", name)
	}
}
