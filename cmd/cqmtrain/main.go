// Command cqmtrain trains the full CQM stack — context classifier and
// quality FIS — from generated or CSV data and writes the models and
// datasets to disk.
//
// Usage:
//
//	cqmtrain [-seed N] [-data file.csv] [-out dir] [-classifier tsk|knn|bayes|centroid]
//	         [-progress] [-metrics-out metrics.json]
//	         [-checkpoint-dir dir] [-checkpoint-every N] [-resume]
//
// Without -data a mixed AwareOffice workload is generated from the seed
// and saved alongside the models, so a later run can retrain from the
// exact same data. Besides the model artifacts, a quality_ref.json
// quality-reference artifact (the training-time right/wrong densities and
// mixture weight) is written for serving-time drift detection
// (awareoffice -quality-ref). -progress logs one structured line per ANFIS epoch
// (train error, check error, step size, early-stop reason); -metrics-out
// dumps a JSON snapshot of the pipeline's metrics registry on exit.
//
// -checkpoint-dir persists the ANFIS training state every
// -checkpoint-every epochs as crash-safe, checksummed artifacts; -resume
// restarts an interrupted run from the newest usable checkpoint and
// converges bit-identically to the uninterrupted run. Model files are
// written through the same atomic artifact envelope, so a crash mid-write
// can never leave a torn classifier.json or measure.json behind.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// options bundles the command-line configuration of one training run.
type options struct {
	seed       int64
	dataPath   string
	outDir     string
	clfKind    string
	progress   bool
	metricsOut string
	ckptDir    string
	ckptEvery  int
	resume     bool
}

func main() {
	var opts options
	flag.Int64Var(&opts.seed, "seed", 1, "seed for data generation")
	flag.StringVar(&opts.dataPath, "data", "", "labelled cue CSV (default: generate from seed)")
	flag.StringVar(&opts.outDir, "out", "cqm-models", "output directory")
	flag.StringVar(&opts.clfKind, "classifier", "tsk", "classifier: tsk, knn, bayes, centroid")
	flag.BoolVar(&opts.progress, "progress", false, "log one structured line per ANFIS training epoch")
	flag.StringVar(&opts.metricsOut, "metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	flag.StringVar(&opts.ckptDir, "checkpoint-dir", "", "persist ANFIS training checkpoints in this directory")
	flag.IntVar(&opts.ckptEvery, "checkpoint-every", 1, "epochs between periodic checkpoints")
	flag.BoolVar(&opts.resume, "resume", false, "resume training from the newest checkpoint in -checkpoint-dir")
	flag.Parse()

	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "cqmtrain:", err)
		os.Exit(1)
	}
}

// progressObserver logs hybrid-learning progress through slog — one line
// per epoch, one line for the stopping decision.
func progressObserver(logger *slog.Logger) core.TrainObserver {
	return core.TrainObserverFuncs{
		OnEpoch: func(ev core.EpochEvent) {
			attrs := []any{
				"epoch", ev.Epoch,
				"train_rmse", ev.TrainRMSE,
				"rate", ev.LearningRate,
				"best", ev.Best,
			}
			if ev.HasCheck {
				attrs = append(attrs, "check_rmse", ev.CheckRMSE)
			}
			logger.Info("anfis epoch", attrs...)
		},
		OnStop: func(ev core.StopEvent) {
			logger.Info("anfis stop",
				"reason", string(ev.Reason),
				"epochs", ev.Epochs,
				"best_epoch", ev.BestEpoch,
				"best_error", ev.BestError,
			)
		},
	}
}

// configHash fingerprints the inputs that determine the training
// trajectory, so resume refuses checkpoints from a different run setup.
func configHash(opts options) (string, error) {
	return ckpt.HashConfig(struct {
		Seed       int64  `json:"seed"`
		Data       string `json:"data"`
		Classifier string `json:"classifier"`
	}{Seed: opts.seed, Data: opts.dataPath, Classifier: opts.clfKind})
}

func run(opts options) error {
	if opts.resume && opts.ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	set, err := loadOrGenerate(opts.seed, opts.dataPath)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d samples, classes %v\n", set.Len(), set.Counts())

	trainer, err := trainerFor(opts.clfKind)
	if err != nil {
		return err
	}
	set.Shuffle(opts.seed)
	trainSet, checkSet, testSet, err := set.Split(0.6, 0.2)
	if err != nil {
		return err
	}
	// The classifier trains on transition-free windows (the paper's pen is
	// pre-trained on clean recordings); the quality FIS then observes it
	// on everything, transitions included.
	pureTrain := &dataset.Set{}
	for _, smp := range trainSet.Samples {
		if smp.Pure {
			pureTrain.Append(smp)
		}
	}
	if pureTrain.Len() == 0 {
		pureTrain = trainSet
	}
	clf, err := trainer.Train(pureTrain)
	if err != nil {
		return fmt.Errorf("training classifier: %w", err)
	}
	acc, err := classify.Accuracy(clf, testSet)
	if err != nil {
		return err
	}
	fmt.Printf("classifier: %s, test accuracy %.3f\n", clf.Name(), acc)

	trainObs, err := core.Observe(clf, trainSet)
	if err != nil {
		return err
	}
	checkObs, err := core.Observe(clf, checkSet)
	if err != nil {
		return err
	}
	testObs, err := core.Observe(clf, testSet)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if opts.metricsOut != "" || opts.ckptDir != "" {
		reg = obs.NewRegistry()
	}
	hash, err := configHash(opts)
	if err != nil {
		return err
	}
	// A NaN/Inf epoch rolls training back to the last finite snapshot at a
	// reduced step size instead of aborting the run.
	buildCfg := core.BuildConfig{Metrics: reg}
	buildCfg.Hybrid.DivergenceRetries = 2
	var observers []core.TrainObserver
	if opts.progress {
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		observers = append(observers, progressObserver(logger))
	}
	var checkpointer *ckpt.Checkpointer
	if opts.ckptDir != "" {
		checkpointer, err = ckpt.NewCheckpointer(ckpt.CheckpointConfig{
			Dir:        opts.ckptDir,
			Interval:   opts.ckptEvery,
			ConfigHash: hash,
			Now:        time.Now,
			Metrics:    reg,
		})
		if err != nil {
			return err
		}
		observers = append(observers, checkpointer)
	}
	if opts.resume {
		res, err := ckpt.LatestState(opts.ckptDir, hash, reg)
		switch {
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			fmt.Println("resume: no usable checkpoint, training from scratch")
		case err != nil:
			return fmt.Errorf("resume: %w", err)
		default:
			buildCfg.Hybrid.Resume = res.State
			fmt.Printf("resume: continuing from epoch %d (%d corrupt checkpoint(s) skipped)\n",
				res.State.Epoch, res.Skipped)
		}
	}
	// Capture the stopping decision so the model manifest and the summary
	// line below report the kept (best) epoch, not just the last one.
	var stopEv *core.StopEvent
	observers = append(observers, core.TrainObserverFuncs{
		OnStop: func(ev core.StopEvent) { stopEv = &ev },
	})
	buildCfg.Observer = core.TrainObservers(observers...)

	span := reg.StartSpan("cqm_build")
	measure, err := core.Build(trainObs, checkObs, buildCfg)
	if err != nil {
		return fmt.Errorf("building quality measure: %w", err)
	}
	span.End("observations", fmt.Sprint(len(trainObs)))
	analysis, err := core.Analyze(measure, testObs)
	if err != nil {
		return fmt.Errorf("analyzing: %w", err)
	}
	fmt.Printf("quality FIS: %d rules over %d inputs\n", measure.Rules(), measure.Inputs())
	if stopEv != nil {
		fmt.Printf("hybrid training: %d epochs, kept epoch %d (error %.6f), stop: %s\n",
			stopEv.Epochs, stopEv.BestEpoch, stopEv.BestError, stopEv.Reason)
	}
	if checkpointer != nil && checkpointer.WriteErrors() > 0 {
		fmt.Fprintf(os.Stderr, "cqmtrain: warning: %d checkpoint write(s) failed\n",
			checkpointer.WriteErrors())
	}
	fmt.Printf("densities: wrong N(%.3f, %.3f), right N(%.3f, %.3f)\n",
		analysis.Wrong.Mu, analysis.Wrong.Sigma, analysis.Right.Mu, analysis.Right.Sigma)
	fmt.Printf("optimal threshold s = %.4f\n", analysis.Threshold)

	if err := os.MkdirAll(opts.outDir, 0o755); err != nil {
		return err
	}
	manifest := ckpt.Manifest{CreatedAt: time.Now(), ConfigHash: hash}
	if stopEv != nil {
		manifest.Epoch = stopEv.Epochs
		manifest.BestEpoch = stopEv.BestEpoch
		manifest.CheckRMSE = stopEv.BestError
	}
	clfData, err := classify.MarshalClassifier(clf)
	if err != nil {
		return fmt.Errorf("serializing classifier: %w", err)
	}
	clfMan := manifest
	clfMan.Kind = ckpt.KindClassifier
	//lint:ignore determinism-taint the manifest's CreatedAt is intentional provenance; artifact payloads stay reproducible
	if err := ckpt.WriteArtifact(filepath.Join(opts.outDir, "classifier.json"),
		clfMan, json.RawMessage(clfData)); err != nil {
		return err
	}
	// Verify the persisted classifier behaves identically before trusting
	// the artifacts.
	reloaded, err := classify.UnmarshalClassifier(clfData)
	if err != nil {
		return fmt.Errorf("reloading classifier: %w", err)
	}
	reAcc, err := classify.Accuracy(reloaded, testSet)
	if err != nil {
		return err
	}
	if reAcc != acc { //lint:ignore floatcmp round-trip persistence must be bit-exact; any drift is the bug this guards
		return fmt.Errorf("reloaded classifier accuracy %v differs from %v", reAcc, acc)
	}
	measureMan := manifest
	measureMan.Kind = ckpt.KindMeasure
	//lint:ignore determinism-taint the manifest's CreatedAt is intentional provenance; artifact payloads stay reproducible
	if err := ckpt.WriteArtifact(filepath.Join(opts.outDir, "measure.json"),
		measureMan, measure); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(opts.outDir, "analysis.json"), analysis); err != nil {
		return err
	}
	// Persist the drift-detection reference so a serving process can load
	// the training-time quality distribution without retraining.
	ref := quality.NewReference(analysis)
	//lint:ignore determinism-taint the reference records its creation time as provenance; the distribution itself is seed-deterministic
	if err := quality.SaveReference(filepath.Join(opts.outDir, "quality_ref.json"), ref, time.Now()); err != nil {
		return fmt.Errorf("writing quality reference: %w", err)
	}
	if opts.dataPath == "" {
		var buf bytes.Buffer
		if err := set.WriteCSV(&buf); err != nil {
			return err
		}
		if err := ckpt.AtomicWriteFile(filepath.Join(opts.outDir, "dataset.csv"), buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	if opts.metricsOut != "" {
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			return fmt.Errorf("writing metrics snapshot: %w", err)
		}
		if err := ckpt.AtomicWriteFile(opts.metricsOut, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("writing metrics snapshot: %w", err)
		}
		fmt.Printf("metrics snapshot written to %s\n", opts.metricsOut)
	}
	fmt.Printf("models written to %s\n", opts.outDir)
	return nil
}

func loadOrGenerate(seed int64, dataPath string) (*dataset.Set, error) {
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadCSV(f)
	}
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9},
		{Amplitude: 0.5, Tempo: 0.8, Irregularity: 0.5},
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
		sensor.DefaultStyle(),
		{Amplitude: 2.2, Tempo: 1.2, Irregularity: 0.8},
	}
	scenarios := make([]*sensor.Scenario, len(styles))
	for i, st := range styles {
		scenarios[i] = sensor.OfficeSession(st)
	}
	return dataset.Generate(dataset.GenerateConfig{
		Scenarios:  scenarios,
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed,
	})
}

func trainerFor(kind string) (classify.Trainer, error) {
	switch kind {
	case "tsk":
		return &classify.TSKTrainer{}, nil
	case "knn":
		return &classify.KNNTrainer{}, nil
	case "bayes":
		return &classify.NaiveBayesTrainer{}, nil
	case "centroid":
		return classify.NearestCentroidTrainer{}, nil
	default:
		return nil, fmt.Errorf("unknown classifier %q", kind)
	}
}

// writeJSON atomically persists v as indented JSON.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	return ckpt.AtomicWriteFile(path, data, 0o644)
}
