// Command cqmtrain trains the full CQM stack — context classifier and
// quality FIS — from generated or CSV data and writes the models and
// datasets to disk.
//
// Usage:
//
//	cqmtrain [-seed N] [-data file.csv] [-out dir] [-classifier tsk|knn|bayes|centroid]
//	         [-progress] [-metrics-out metrics.json]
//
// Without -data a mixed AwareOffice workload is generated from the seed
// and saved alongside the models, so a later run can retrain from the
// exact same data. -progress logs one structured line per ANFIS epoch
// (train error, check error, step size, early-stop reason); -metrics-out
// dumps a JSON snapshot of the pipeline's metrics registry on exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/obs"
	"cqm/internal/sensor"
)

func main() {
	seed := flag.Int64("seed", 1, "seed for data generation")
	dataPath := flag.String("data", "", "labelled cue CSV (default: generate from seed)")
	outDir := flag.String("out", "cqm-models", "output directory")
	clfKind := flag.String("classifier", "tsk", "classifier: tsk, knn, bayes, centroid")
	progress := flag.Bool("progress", false, "log one structured line per ANFIS training epoch")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	flag.Parse()

	if err := run(*seed, *dataPath, *outDir, *clfKind, *progress, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "cqmtrain:", err)
		os.Exit(1)
	}
}

// progressObserver logs hybrid-learning progress through slog — one line
// per epoch, one line for the stopping decision.
func progressObserver(logger *slog.Logger) core.TrainObserver {
	return core.TrainObserverFuncs{
		OnEpoch: func(ev core.EpochEvent) {
			attrs := []any{
				"epoch", ev.Epoch,
				"train_rmse", ev.TrainRMSE,
				"rate", ev.LearningRate,
				"best", ev.Best,
			}
			if ev.HasCheck {
				attrs = append(attrs, "check_rmse", ev.CheckRMSE)
			}
			logger.Info("anfis epoch", attrs...)
		},
		OnStop: func(ev core.StopEvent) {
			logger.Info("anfis stop",
				"reason", string(ev.Reason),
				"epochs", ev.Epochs,
				"best_epoch", ev.BestEpoch,
				"best_error", ev.BestError,
			)
		},
	}
}

func run(seed int64, dataPath, outDir, clfKind string, progress bool, metricsOut string) error {
	set, err := loadOrGenerate(seed, dataPath)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d samples, classes %v\n", set.Len(), set.Counts())

	trainer, err := trainerFor(clfKind)
	if err != nil {
		return err
	}
	set.Shuffle(seed)
	trainSet, checkSet, testSet, err := set.Split(0.6, 0.2)
	if err != nil {
		return err
	}
	// The classifier trains on transition-free windows (the paper's pen is
	// pre-trained on clean recordings); the quality FIS then observes it
	// on everything, transitions included.
	pureTrain := &dataset.Set{}
	for _, smp := range trainSet.Samples {
		if smp.Pure {
			pureTrain.Append(smp)
		}
	}
	if pureTrain.Len() == 0 {
		pureTrain = trainSet
	}
	clf, err := trainer.Train(pureTrain)
	if err != nil {
		return fmt.Errorf("training classifier: %w", err)
	}
	acc, err := classify.Accuracy(clf, testSet)
	if err != nil {
		return err
	}
	fmt.Printf("classifier: %s, test accuracy %.3f\n", clf.Name(), acc)

	trainObs, err := core.Observe(clf, trainSet)
	if err != nil {
		return err
	}
	checkObs, err := core.Observe(clf, checkSet)
	if err != nil {
		return err
	}
	testObs, err := core.Observe(clf, testSet)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if metricsOut != "" {
		reg = obs.NewRegistry()
	}
	buildCfg := core.BuildConfig{Metrics: reg}
	if progress {
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		buildCfg.Observer = progressObserver(logger)
	}
	span := reg.StartSpan("cqm_build")
	measure, err := core.Build(trainObs, checkObs, buildCfg)
	if err != nil {
		return fmt.Errorf("building quality measure: %w", err)
	}
	span.End("observations", fmt.Sprint(len(trainObs)))
	analysis, err := core.Analyze(measure, testObs)
	if err != nil {
		return fmt.Errorf("analyzing: %w", err)
	}
	fmt.Printf("quality FIS: %d rules over %d inputs\n", measure.Rules(), measure.Inputs())
	fmt.Printf("densities: wrong N(%.3f, %.3f), right N(%.3f, %.3f)\n",
		analysis.Wrong.Mu, analysis.Wrong.Sigma, analysis.Right.Mu, analysis.Right.Sigma)
	fmt.Printf("optimal threshold s = %.4f\n", analysis.Threshold)

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	clfData, err := classify.MarshalClassifier(clf)
	if err != nil {
		return fmt.Errorf("serializing classifier: %w", err)
	}
	if err := os.WriteFile(filepath.Join(outDir, "classifier.json"), clfData, 0o644); err != nil {
		return err
	}
	// Verify the persisted classifier behaves identically before trusting
	// the artifacts.
	reloaded, err := classify.UnmarshalClassifier(clfData)
	if err != nil {
		return fmt.Errorf("reloading classifier: %w", err)
	}
	reAcc, err := classify.Accuracy(reloaded, testSet)
	if err != nil {
		return err
	}
	if reAcc != acc { //lint:ignore floatcmp round-trip persistence must be bit-exact; any drift is the bug this guards
		return fmt.Errorf("reloaded classifier accuracy %v differs from %v", reAcc, acc)
	}
	if err := writeJSON(filepath.Join(outDir, "measure.json"), measure); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(outDir, "analysis.json"), analysis); err != nil {
		return err
	}
	if dataPath == "" {
		f, err := os.Create(filepath.Join(outDir, "dataset.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := set.WriteCSV(f); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return fmt.Errorf("creating metrics snapshot: %w", err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			return fmt.Errorf("writing metrics snapshot: %w", err)
		}
		fmt.Printf("metrics snapshot written to %s\n", metricsOut)
	}
	fmt.Printf("models written to %s\n", outDir)
	return nil
}

func loadOrGenerate(seed int64, dataPath string) (*dataset.Set, error) {
	if dataPath != "" {
		f, err := os.Open(dataPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadCSV(f)
	}
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9},
		{Amplitude: 0.5, Tempo: 0.8, Irregularity: 0.5},
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
		sensor.DefaultStyle(),
		{Amplitude: 2.2, Tempo: 1.2, Irregularity: 0.8},
	}
	scenarios := make([]*sensor.Scenario, len(styles))
	for i, st := range styles {
		scenarios[i] = sensor.OfficeSession(st)
	}
	return dataset.Generate(dataset.GenerateConfig{
		Scenarios:  scenarios,
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed,
	})
}

func trainerFor(kind string) (classify.Trainer, error) {
	switch kind {
	case "tsk":
		return &classify.TSKTrainer{}, nil
	case "knn":
		return &classify.KNNTrainer{}, nil
	case "bayes":
		return &classify.NaiveBayesTrainer{}, nil
	case "centroid":
		return classify.NearestCentroidTrainer{}, nil
	default:
		return nil, fmt.Errorf("unknown classifier %q", kind)
	}
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	return os.WriteFile(path, data, 0o644)
}
