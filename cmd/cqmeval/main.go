// Command cqmeval reproduces the paper's evaluation end to end: it builds
// the canonical pipeline on the synthetic AwarePen substrate and prints
// the requested experiment (or all of them).
//
// Usage:
//
//	cqmeval [-seed N] [-experiment fig5|fig6|probs|improvement|agnostic|balance|sizes|camera|ablations|all]
//	        [-metrics-out metrics.json] [-workers N] [-faults] [-retransmit] [-adapt]
//
// -metrics-out instruments the canonical pipeline (training counters,
// scoring and ε-rate counters, the quality histogram) and writes a JSON
// snapshot of the registry after the experiments finish.
//
// -workers parallelizes the hot paths (subtractive clustering, hybrid
// learning, cross-validation folds): 0 picks one worker per CPU, 1 (the
// default) keeps everything serial. Results are bit-identical at every
// setting.
//
// -faults runs the E8 robustness sweep (shorthand for -experiment faults):
// the appliance chain under increasing sensor- and channel-fault
// intensity, reporting raw and CQM-filtered accuracy, ε rates, and the
// camera's surviving event intake. -retransmit additionally turns on the
// bus's ack/retransmit reliability layer for the sweep.
//
// -adapt runs the self-healing lifecycle demo (shorthand for -experiment
// adapt): the adaptation supervisor's heal, quarantine, and rollback
// scenarios plus a bit-identity replay check, exiting nonzero on any
// journal-invariant or determinism violation.
package main

import (
	"flag"
	"fmt"
	"os"

	"cqm/internal/adapt"
	"cqm/internal/core"
	"cqm/internal/eval"
	"cqm/internal/obs"
)

func main() {
	seed := flag.Int64("seed", eval.DefaultSeed, "random seed for the evaluation pipeline")
	experiment := flag.String("experiment", "all", "experiment to run: fig5, fig6, probs, improvement, agnostic, balance, sizes, camera, predict, fusion, confidence, crossval, cues, noise, faults, resume, adapt, ablations, all")
	report := flag.Bool("report", false, "write the consolidated report (all experiments, DESIGN.md order) to stdout")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	workers := flag.Int("workers", 1, "worker count for parallelized stages (0 = one per CPU, 1 = serial); results are identical at every setting")
	faults := flag.Bool("faults", false, "run the fault-intensity robustness sweep (shorthand for -experiment faults)")
	retransmit := flag.Bool("retransmit", false, "enable the bus ack/retransmit reliability layer in the faults sweep")
	adaptDemo := flag.Bool("adapt", false, "run the self-healing lifecycle demo (shorthand for -experiment adapt)")
	flag.Parse()

	if *report {
		if err := eval.WriteReport(os.Stdout, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "cqmeval:", err)
			os.Exit(1)
		}
		return
	}
	exp := *experiment
	if *faults {
		exp = "faults"
	}
	if *adaptDemo {
		exp = "adapt"
	}
	if err := run(*seed, exp, *metricsOut, *workers, *retransmit); err != nil {
		fmt.Fprintln(os.Stderr, "cqmeval:", err)
		os.Exit(1)
	}
}

func run(seed int64, experiment, metricsOut string, workers int, retransmit bool) error {
	var reg *obs.Registry
	if metricsOut != "" {
		reg = obs.NewRegistry()
	}
	needsSetup := map[string]bool{
		"fig5": true, "fig6": true, "probs": true, "faults": true,
		"improvement": true, "camera": true, "confidence": true,
		"resume": true, "all": true,
	}
	build := core.BuildConfig{Metrics: reg}
	build.Clustering.Workers = workers
	build.Hybrid.Workers = workers
	var setup *eval.Setup
	if needsSetup[experiment] {
		var err error
		setup, err = eval.NewSetup(eval.SetupConfig{
			Seed:  seed,
			Build: build,
		})
		if err != nil {
			return err
		}
	}
	defer func() {
		if metricsOut == "" {
			return
		}
		f, err := os.Create(metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqmeval: metrics snapshot:", err)
			return
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "cqmeval: metrics snapshot:", err)
		}
	}()

	all := experiment == "all"
	ran := false
	if all || experiment == "fig5" {
		res, err := eval.Figure5(setup)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "fig6" {
		res, err := eval.Figure6(setup)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "probs" {
		fmt.Print(eval.RenderProbabilityTable(eval.ProbabilityTable(setup)))
		ran = true
	}
	if all || experiment == "improvement" {
		res, err := eval.ImprovementExperiment(setup)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "agnostic" {
		rows, err := eval.AgnosticismSweep(seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderAgnostic(rows))
		ran = true
	}
	if all || experiment == "balance" {
		rows, err := eval.ThresholdBalanceSweep(seed, nil)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderBalance(rows))
		ran = true
	}
	if all || experiment == "sizes" {
		rows, err := eval.TestSizeSweep(seed, nil)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderSizes(rows))
		ran = true
	}
	if all || experiment == "camera" {
		res, err := eval.CameraExperiment(setup, eval.CameraConfig{Seed: seed})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "faults" {
		res, err := eval.FaultSweep(setup, eval.FaultConfig{
			Seed:       seed,
			Workers:    max(workers, 1),
			Retransmit: retransmit,
		})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if experiment == "adapt" {
		dir, err := os.MkdirTemp("", "cqm-adapt-demo-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		out, err := adapt.RunDemo(adapt.DemoConfig{
			Dir:     dir,
			Seed:    seed,
			Workers: max(workers, 1),
			Metrics: reg,
		})
		fmt.Print(out)
		if err != nil {
			return err
		}
		ran = true
	}
	if all || experiment == "resume" {
		res, err := eval.ResumeExperiment(setup, eval.ResumeConfig{Workers: max(workers, 1)})
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "predict" {
		res, err := eval.PredictionExperiment(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "fusion" {
		res, err := eval.FusionExperiment(seed)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "confidence" {
		res, err := eval.ThresholdConfidence(setup, 500, 0.95)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "cues" {
		rows, err := eval.CueAblation(seed)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderCues(rows))
		ran = true
	}
	if all || experiment == "crossval" {
		res, err := eval.CrossValidateWorkers(seed, 5, workers)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		ran = true
	}
	if all || experiment == "noise" {
		rows, err := eval.NoiseRobustnessSweep(seed, nil)
		if err != nil {
			return err
		}
		fmt.Print(eval.RenderNoise(rows))
		ran = true
	}
	if all || experiment == "ablations" {
		ablations := []struct {
			title string
			fn    func(int64) ([]eval.AblationRow, error)
		}{
			{"Ablation — hybrid learning", eval.AblationHybrid},
			{"Ablation — consequent order", eval.AblationConsequents},
			{"Ablation — clustering method", eval.AblationClustering},
			{"Ablation — density model", eval.AblationDensity},
			{"Ablation — normalization", eval.AblationNormalization},
		}
		for _, a := range ablations {
			rows, err := a.fn(seed)
			if err != nil {
				return fmt.Errorf("%s: %w", a.title, err)
			}
			fmt.Print(eval.RenderAblation(a.title, rows))
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return nil
}
