// Command cqmlint runs the repo-specific static-analysis suite over the
// cqm module. It loads every package matching the given patterns, type
// checks them in dependency order, and applies the checks registered in
// internal/lint.
//
// Usage:
//
//	cqmlint [flags] [packages]
//
//	go run ./cmd/cqmlint ./...
//	go run ./cmd/cqmlint -json ./internal/...
//	go run ./cmd/cqmlint -checks floatcmp,unchecked-err ./internal/stat
//	go run ./cmd/cqmlint -escapes
//	go run ./cmd/cqmlint -update-escapes
//
// Exit status is 0 when the tree is clean, 1 when any finding is reported
// (the CI gate), and 2 on usage or load errors. Findings print one per
// line as file:line:col: [check] message; -json emits the same findings
// as a JSON array of {file, line, col, check, message} objects.
//
// Beyond the per-package checks, the suite includes interprocedural
// analyses built on a whole-module call graph: determinism-taint
// (nondeterministic values must not flow into encoders, artifacts, or bus
// publishes), hotpath-alloc (no unwaived allocation reachable from a
// //cqm:hotpath root, pruned at //cqm:coldpath), and lock-discipline (no
// blocking call under a held mutex; consistent lock ordering).
//
// -escapes compiles the module with -gcflags=-m, attributes the
// compiler's escape diagnostics to hot-path functions, and diffs them
// against the checked-in ESCAPES.json budget: exit 1 on any escape above
// budget. -update-escapes rewrites the budget to the current state.
//
// A finding can be waived in place with a mandatory-reason directive on
// the offending line or the line above:
//
//	//lint:ignore check-name reason
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cqm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cqmlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default all)")
	list := fs.Bool("list", false, "list registered checks and exit")
	dir := fs.String("C", "", "change to this directory before locating the module")
	escapes := fs.Bool("escapes", false, "diff hot-path escape diagnostics against ESCAPES.json")
	updateEscapes := fs.Bool("update-escapes", false, "rewrite ESCAPES.json from the current hot-path escapes")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *escapes || *updateEscapes {
		return runEscapes(*dir, *updateEscapes)
	}
	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	var names []string
	if *checks != "" {
		names = strings.Split(*checks, ",")
	}
	findings, err := lint.Run(lint.Options{
		Dir:      *dir,
		Patterns: fs.Args(),
		Checks:   names,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqmlint:", err)
		return 2
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "cqmlint:", err)
			return 2
		}
	} else if err := lint.WriteText(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, "cqmlint:", err)
		return 2
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cqmlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// runEscapes drives the escape-budget ratchet: exit 1 on regressions,
// 0 otherwise (improvements are advisory).
func runEscapes(dir string, update bool) int {
	res, err := lint.RunEscapes(dir, update)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqmlint:", err)
		return 2
	}
	if update {
		fmt.Printf("cqmlint: wrote %d hot-path escape entries to %s\n", len(res.Entries), lint.EscapeBudgetFile)
		return 0
	}
	for _, r := range res.Regressions {
		fmt.Println("regression:", r)
	}
	for _, im := range res.Improvements {
		fmt.Println("improvement:", im)
	}
	if len(res.Improvements) > 0 {
		fmt.Println("cqmlint: budget is loose; ratchet down with -update-escapes")
	}
	if len(res.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "cqmlint: %d hot-path escape regression(s) over %s\n", len(res.Regressions), lint.EscapeBudgetFile)
		return 1
	}
	return 0
}
