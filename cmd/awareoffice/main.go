// Command awareoffice runs the distributed AwareOffice simulation with a
// configurable network: an AwarePen publishes quality-annotated context
// events over a lossy Particle RF medium, and two whiteboard cameras — one
// trusting everything, one CQM-filtered — are scored against the true
// end-of-writing moments.
//
// Usage:
//
//	awareoffice [-seed N] [-sessions N] [-loss P] [-burst P] [-retransmit] [-ber P] [-latency S]
//	            [-jitter S] [-fault kind] [-metrics-addr :8080] [-metrics-out file] [-workers N]
//	            [-model-watch file] [-quality-ref file] [-quality-out file] [-trace-sample N] [-pprof]
//
// With -metrics-addr the whole pipeline is instrumented and served at
// /metrics in Prometheus text format (?format=json for a JSON snapshot),
// with the quality analytics report at /quality and — with -pprof — the
// net/http/pprof profiling handlers at /debug/pprof/; the process then
// stays alive after printing its results until interrupted.
// SIGINT/SIGTERM shut it down gracefully: the model watcher stops, the
// bus closes, final metrics and quality snapshots are flushed to
// -metrics-out / -quality-out (when set), and the process exits 0.
//
// The quality analytics engine always watches the pen's published
// decisions: per-source sliding-window statistics, Page–Hinkley and
// Kolmogorov–Smirnov drift detection against the training-time reference
// (loaded from a cqmtrain -quality-ref artifact when given, derived from
// the in-process training otherwise), and a structured QualityReport with
// trends, alerts, and a health grade, summarized after the run.
//
// -fault injects a sensor fault (stuck|saturation|dropout|spike|drift)
// into the middle third of the sessions — a reproducible degradation
// window the drift detectors should flag, with detection epochs that
// replay bit-identically under the same seed at any -workers setting.
//
// -trace-sample N records an end-to-end pipeline trace (sample → score →
// publish → bus delivery and retransmits → camera fusion → decision) for
// every Nth published event into a bounded ring, dumped at /quality and
// in the -quality-out snapshot.
//
// -model-watch hot-reloads the pen's quality measure from a ckpt measure
// artifact (as written by cqmtrain): the file is polled for changes,
// candidates are checksum- and smoke-validated before an atomic swap, bad
// pushes are rejected while serving continues on the current model, and a
// last-good copy is kept beside the watched file for rollback.
//
// -burst replaces the i.i.d. -loss coin with a Gilbert–Elliott burst
// channel tuned to the given average loss rate; -retransmit turns on the
// bus's publisher-side ack/retransmit layer (bounded retries with
// exponential backoff in virtual time), whose send-window accounting is
// printed per publisher.
//
// -workers parallelizes training (clustering + hybrid learning) and makes
// the pen pre-score each session's windows in one batch. The simulation's
// outputs are bit-identical at every setting; 1 (the default) keeps the
// legacy serial paths.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"syscall"
	"time"

	"cqm/internal/awareoffice"
	"cqm/internal/ckpt"
	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/fault"
	"cqm/internal/obs"
	"cqm/internal/quality"
	"cqm/internal/sensor"
)

// The hot-reload handle must keep satisfying the pen's source hook.
var _ awareoffice.MeasureSource = (*ckpt.Handle)(nil)

// watchInterval is how often the model watcher polls the artifact file
// while the process serves metrics.
const watchInterval = 2 * time.Second

// options bundles the command-line configuration of one simulation run.
type options struct {
	seed        int64
	sessions    int
	loss        float64
	burst       float64
	retransmit  bool
	ber         float64
	latency     float64
	jitter      float64
	metricsAddr string
	metricsOut  string
	workers     int
	modelWatch  string
	faultName   string
	qualityRef  string
	qualityOut  string
	traceSample int
	pprof       bool
}

func main() {
	var opts options
	flag.Int64Var(&opts.seed, "seed", 1, "simulation seed")
	flag.IntVar(&opts.sessions, "sessions", 6, "number of office sessions")
	flag.Float64Var(&opts.loss, "loss", 0.05, "packet loss probability")
	flag.Float64Var(&opts.burst, "burst", 0, "average loss rate of a Gilbert–Elliott burst channel (replaces -loss when > 0)")
	flag.BoolVar(&opts.retransmit, "retransmit", false, "enable publisher-side ack/retransmit with the default backoff policy")
	flag.Float64Var(&opts.ber, "ber", 0, "physical bit error rate (frames failing CRC are dropped)")
	flag.Float64Var(&opts.latency, "latency", 0.02, "base one-way delay in seconds")
	flag.Float64Var(&opts.jitter, "jitter", 0.03, "uniform extra delay bound in seconds")
	flag.StringVar(&opts.metricsAddr, "metrics-addr", "", "serve /metrics (Prometheus text format) on this address and keep running")
	flag.StringVar(&opts.metricsOut, "metrics-out", "", "flush a final JSON metrics snapshot to this file on shutdown")
	flag.IntVar(&opts.workers, "workers", 1, "worker count for training and batch pre-scoring (0 = one per CPU, 1 = serial); outputs are identical at every setting")
	flag.StringVar(&opts.modelWatch, "model-watch", "", "hot-reload the pen's quality measure from this ckpt measure artifact")
	flag.StringVar(&opts.faultName, "fault", "none", "sensor fault injected into the middle third of sessions (none|stuck|saturation|dropout|spike|drift)")
	flag.StringVar(&opts.qualityRef, "quality-ref", "", "load the drift-detection reference from this cqmtrain quality-reference artifact (default: derive from in-process training)")
	flag.StringVar(&opts.qualityOut, "quality-out", "", "flush a final JSON quality report (with traces) to this file on shutdown")
	flag.IntVar(&opts.traceSample, "trace-sample", 0, "record an end-to-end pipeline trace for every Nth published event (0 = off)")
	flag.BoolVar(&opts.pprof, "pprof", false, "serve net/http/pprof profiling handlers at /debug/pprof/ on -metrics-addr")
	flag.Parse()

	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "awareoffice:", err)
		os.Exit(1)
	}
}

// qualityEndpoint serves /quality, swapping in the engine and tracer once
// the recognition stack is trained; requests before that see an empty
// report.
type qualityEndpoint struct {
	mu sync.Mutex
	e  *quality.Engine
	tr *quality.Tracer
}

// set installs the live engine and tracer.
func (q *qualityEndpoint) set(e *quality.Engine, tr *quality.Tracer) {
	q.mu.Lock()
	q.e, q.tr = e, tr
	q.mu.Unlock()
}

// ServeHTTP delegates to the quality handler over the current engine.
func (q *qualityEndpoint) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q.mu.Lock()
	e, tr := q.e, q.tr
	q.mu.Unlock()
	quality.Handler(e, tr).ServeHTTP(w, r)
}

func run(opts options) error {
	var reg *obs.Registry
	var ln net.Listener
	qep := &qualityEndpoint{}
	if opts.metricsAddr != "" || opts.metricsOut != "" {
		reg = obs.NewRegistry()
	}
	if opts.metricsAddr != "" {
		var err error
		if ln, err = net.Listen("tcp", opts.metricsAddr); err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := obs.NewMux(obs.MuxConfig{Registry: reg, Quality: qep, Pprof: opts.pprof})
		go func() { _ = (&http.Server{Handler: mux}).Serve(ln) }()
		fmt.Printf("metrics: http://%s/metrics (quality report at /quality)\n", ln.Addr())
	}

	injected, err := faultFor(opts.faultName)
	if err != nil {
		return err
	}

	clf, measure, analysis, err := trainStack(opts.seed, reg, opts.workers)
	if err != nil {
		return err
	}
	threshold := analysis.Threshold
	fmt.Printf("recognition stack ready: threshold s = %.3f\n", threshold)

	ref := quality.NewReference(analysis)
	if opts.qualityRef != "" {
		if ref, err = quality.LoadReference(opts.qualityRef); err != nil {
			return fmt.Errorf("loading quality reference: %w", err)
		}
		fmt.Printf("quality reference loaded from %s\n", opts.qualityRef)
	}
	engine := quality.NewEngine(quality.Config{Threshold: threshold, Reference: ref, Metrics: reg})
	tracer := quality.NewTracer(opts.traceSample, 0, reg)
	qep.set(engine, tracer)

	sim := awareoffice.NewSimulation(opts.seed + 10)
	link := awareoffice.Link{Latency: opts.latency, Jitter: opts.jitter, Loss: opts.loss, BitErrorRate: opts.ber}
	var channel *fault.GilbertElliott
	if opts.burst > 0 {
		channel = fault.BurstLoss(opts.burst)
		channel.Instrument(reg)
		link.Loss = 0
		link.LossModel = channel
	}
	bus, err := awareoffice.NewBus(sim, link)
	if err != nil {
		return err
	}
	if opts.retransmit {
		if err := bus.EnableReliability(awareoffice.DefaultReliability()); err != nil {
			return err
		}
	}
	bus.Instrument(reg)
	bus.Trace(tracer)
	plain := &awareoffice.Camera{Name: "camera-plain", Tracer: tracer}
	plain.Instrument(reg)
	plain.Attach(bus)
	filtered := &awareoffice.Camera{Name: "camera-cqm", UseQuality: true, MinQuality: threshold, Tracer: tracer}
	filtered.Instrument(reg)
	filtered.Attach(bus)
	pen := &awareoffice.Pen{Classifier: clf, Measure: measure, Quality: engine, Tracer: tracer}
	switch {
	case opts.workers == 0: // auto: batch pre-scoring with one worker per CPU
		pen.PreScoreWorkers = runtime.GOMAXPROCS(0)
	case opts.workers > 1:
		pen.PreScoreWorkers = opts.workers
	}
	var watcher *ckpt.ModelWatcher
	if opts.modelWatch != "" {
		// The in-process trained model is the starting point; a valid
		// artifact at the watched path replaces it, a bad one is rejected
		// and serving continues on the handle's current model.
		handle := ckpt.NewHandle(measure)
		watcher, err = ckpt.NewModelWatcher(ckpt.WatchConfig{Path: opts.modelWatch, Metrics: reg}, handle)
		if err != nil {
			return err
		}
		pen.Source = handle
		if swapped, err := watcher.Poll(); err != nil {
			fmt.Fprintf(os.Stderr, "awareoffice: model watch: %v\n", err)
		} else if swapped {
			fmt.Printf("model watch: loaded %s\n", opts.modelWatch)
		}
	}
	pen.Attach(bus)

	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	}
	rng := rand.New(rand.NewSource(opts.seed + 11))
	faultRng := rand.New(rand.NewSource(opts.seed + 12))
	// The fault window is the middle third of the sessions — a bounded,
	// reproducible degradation the drift detectors should flag.
	faultLo, faultHi := opts.sessions/3, 2*opts.sessions/3
	faultStart, faultEnd := -1.0, -1.0
	var truths []float64
	offset := 0.0
	for i := 0; i < opts.sessions; i++ {
		readings, err := sensor.OfficeSession(styles[i%len(styles)]).Run(rng)
		if err != nil {
			return fmt.Errorf("session %d: %w", i, err)
		}
		if injected != nil && i >= faultLo && i < faultHi {
			if readings, err = injected.Apply(readings, faultRng); err != nil {
				return fmt.Errorf("injecting %s into session %d: %w", injected.Name(), i, err)
			}
		}
		for k := range readings {
			readings[k].T += offset
		}
		if injected != nil && i >= faultLo && i < faultHi {
			if faultStart < 0 {
				faultStart = readings[0].T
			}
			faultEnd = readings[len(readings)-1].T
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			return fmt.Errorf("feeding session %d: %w", i, err)
		}
		truths = append(truths, awareoffice.EndOfWritingTimes(readings)...)
		offset = readings[len(readings)-1].T + 2
	}
	if injected != nil && faultStart >= 0 {
		fmt.Printf("fault: %s injected into sessions [%d,%d) spanning virtual [%.1f s, %.1f s]\n",
			injected.Name(), faultLo, faultHi, faultStart, faultEnd)
	}
	sim.Run(offset + 5)

	st := bus.Stats()
	fmt.Printf("network: %d published, %d delivered, %d lost, %d CRC-dropped\n",
		st.Published, st.Delivered, st.Dropped, st.Corrupted)
	if channel != nil {
		fmt.Printf("  burst channel: %d drops over %d decisions (stationary %.1f%%)\n",
			channel.Drops(), channel.Decisions(), 100*channel.StationaryLoss())
	}
	names := make([]string, 0, len(st.Subscribers))
	for name := range st.Subscribers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		link := st.Subscribers[name]
		fmt.Printf("  link %-14s %d delivered, %d lost, %d corrupted, %d duplicated\n",
			name+":", link.Delivered, link.Dropped, link.Corrupted, link.Duplicated)
	}
	if opts.retransmit {
		pubs := make([]string, 0, len(st.Publishers))
		for name := range st.Publishers {
			pubs = append(pubs, name)
		}
		sort.Strings(pubs)
		for _, name := range pubs {
			ps := st.Publishers[name]
			fmt.Printf("  send window %-9s %d published, %d retransmits, %d gave up, %d outstanding\n",
				name+":", ps.Published, ps.Retransmits, ps.GaveUp, ps.Outstanding)
		}
	}
	fmt.Printf("true end-of-writing moments: %d\n\n", len(truths))
	scoreP := awareoffice.ScoreSnapshots(plain.Snapshots(), truths, 2.5)
	scoreF := awareoffice.ScoreSnapshots(filtered.Snapshots(), truths, 2.5)
	fmt.Printf("%-14s %5s %9s %10s %8s\n", "camera", "hits", "spurious", "precision", "recall")
	fmt.Printf("%-14s %5d %9d %10.3f %8.3f\n",
		"plain", scoreP.Hits, scoreP.Spurious, scoreP.Precision(), scoreP.Recall())
	fmt.Printf("%-14s %5d %9d %10.3f %8.3f  (ignored %d events)\n",
		"cqm-filtered", scoreF.Hits, scoreF.Spurious, scoreF.Precision(), scoreF.Recall(), filtered.Ignored())

	printQualityReport(engine.Report(), tracer)

	if ln != nil {
		if watcher != nil {
			watcher.Start(watchInterval, func(err error) {
				fmt.Fprintf(os.Stderr, "awareoffice: model watch: %v\n", err)
			})
		}
		fmt.Printf("\nserving metrics on http://%s/metrics — Ctrl-C to exit\n", ln.Addr())
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		sig := <-stop
		signal.Stop(stop)
		fmt.Printf("received %s, shutting down\n", sig)
		if watcher != nil {
			watcher.Stop()
		}
	}
	// Graceful shutdown: fence the bus so nothing publishes past this
	// point, then flush the final metrics snapshot.
	bus.Close()
	if opts.metricsOut != "" {
		if err := writeMetricsSnapshot(opts.metricsOut, reg); err != nil {
			return err
		}
		fmt.Printf("final metrics snapshot written to %s\n", opts.metricsOut)
	}
	if opts.qualityOut != "" {
		if err := writeQualitySnapshot(opts.qualityOut, engine, tracer); err != nil {
			return err
		}
		fmt.Printf("final quality snapshot written to %s\n", opts.qualityOut)
	}
	return nil
}

// printQualityReport summarizes the engine's report on stdout: health,
// per-source windowed statistics, and every drift-detection epoch.
func printQualityReport(rep *quality.Report, tr *quality.Tracer) {
	fmt.Printf("\nquality report (virtual t=%.1f s): health %s (score %.2f), %d observations\n",
		rep.At, rep.Health, rep.HealthScore, rep.Observations)
	for _, src := range rep.Sources {
		fmt.Printf("  %s: window mean q %.3f (σ %.3f), accept %.0f%%, ε %.0f%%, velocity %+.4f/s, trend %s/%s\n",
			src.Name, src.Window.Mean, src.Window.StdDev,
			100*src.Window.AcceptRate, 100*src.Window.EpsilonRate,
			src.Trends.DegradationVelocity, src.Trends.Direction, src.Trends.Volatility)
		if src.PageHinkley.Fired > 0 {
			fmt.Printf("    page-hinkley: %d alarm(s):", src.PageHinkley.Fired)
			for _, ep := range src.PageHinkley.Epochs {
				fmt.Printf(" t=%.1f s (obs #%d)", ep.At, ep.Index)
			}
			fmt.Println()
		}
		if src.KS.Evaluated {
			verdict := "within reference"
			if src.KS.Drifting {
				verdict = "DRIFTING from reference"
			}
			fmt.Printf("    ks: D=%.3f vs critical %.3f over %d values — %s\n",
				src.KS.Stat, src.KS.Critical, src.KS.N, verdict)
		}
	}
	for _, a := range rep.Alerts {
		fmt.Printf("  alert [%s] %s/%s: %s — %s\n", a.Severity, a.Source, a.Kind, a.Message, a.Recommendation)
	}
	if n := len(tr.Snapshot()); n > 0 {
		fmt.Printf("  traces: %d retained from %d published events (see /quality or -quality-out)\n", n, tr.Begun())
	}
}

// writeQualitySnapshot atomically flushes the quality report and retained
// traces as JSON.
func writeQualitySnapshot(path string, e *quality.Engine, tr *quality.Tracer) error {
	snap := quality.Snapshot{Report: e.Report(), Traces: tr.Snapshot()}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding quality snapshot: %w", err)
	}
	if err := ckpt.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing quality snapshot: %w", err)
	}
	return nil
}

// writeMetricsSnapshot atomically flushes the registry as JSON.
func writeMetricsSnapshot(path string, reg *obs.Registry) error {
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		return fmt.Errorf("encoding metrics snapshot: %w", err)
	}
	if err := ckpt.AtomicWriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	return nil
}

// faultFor maps a -fault name to one injected sensor fault, or nil for
// "none".
func faultFor(name string) (fault.SensorFault, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "stuck":
		return &fault.StuckAxis{Axis: fault.AxisZ, Start: 8}, nil
	case "saturation":
		return &fault.Saturation{Gain: 4}, nil
	case "dropout":
		return &fault.Dropout{Start: 10, Duration: 3}, nil
	case "spike":
		return &fault.SpikeNoise{Prob: 0.3}, nil
	case "drift":
		return &fault.ClockDrift{Rate: 0.2}, nil
	default:
		return nil, fmt.Errorf("unknown fault %q", name)
	}
}

func trainStack(seed int64, reg *obs.Registry, workers int) (classify.Classifier, *core.Measure, *core.Analysis, error) {
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 12},
			{Context: sensor.ContextWriting, Duration: 12},
			{Context: sensor.ContextPlaying, Duration: 12},
		}}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		return nil, nil, nil, err
	}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	observations, err := core.Observe(clf, mixed)
	if err != nil {
		return nil, nil, nil, err
	}
	build := core.BuildConfig{Metrics: reg}
	build.Clustering.Workers = workers
	build.Hybrid.Workers = workers
	measure, err := core.Build(observations, nil, build)
	if err != nil {
		return nil, nil, nil, err
	}
	analysis, err := core.Analyze(measure, observations)
	if err != nil {
		return nil, nil, nil, err
	}
	return clf, measure, analysis, nil
}
