// Command awareoffice runs the distributed AwareOffice simulation with a
// configurable network: an AwarePen publishes quality-annotated context
// events over a lossy Particle RF medium, and two whiteboard cameras — one
// trusting everything, one CQM-filtered — are scored against the true
// end-of-writing moments.
//
// Usage:
//
//	awareoffice [-seed N] [-sessions N] [-loss P] [-burst P] [-retransmit] [-ber P] [-latency S]
//	            [-jitter S] [-metrics-addr :8080] [-workers N]
//
// With -metrics-addr the whole pipeline is instrumented and served at
// /metrics in Prometheus text format (?format=json for a JSON snapshot);
// the process then stays alive after printing its results until
// interrupted, so the endpoint can be scraped.
//
// -burst replaces the i.i.d. -loss coin with a Gilbert–Elliott burst
// channel tuned to the given average loss rate; -retransmit turns on the
// bus's publisher-side ack/retransmit layer (bounded retries with
// exponential backoff in virtual time), whose send-window accounting is
// printed per publisher.
//
// -workers parallelizes training (clustering + hybrid learning) and makes
// the pen pre-score each session's windows in one batch. The simulation's
// outputs are bit-identical at every setting; 1 (the default) keeps the
// legacy serial paths.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"

	"cqm/internal/awareoffice"
	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/fault"
	"cqm/internal/obs"
	"cqm/internal/sensor"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	sessions := flag.Int("sessions", 6, "number of office sessions")
	loss := flag.Float64("loss", 0.05, "packet loss probability")
	burst := flag.Float64("burst", 0, "average loss rate of a Gilbert–Elliott burst channel (replaces -loss when > 0)")
	retransmit := flag.Bool("retransmit", false, "enable publisher-side ack/retransmit with the default backoff policy")
	ber := flag.Float64("ber", 0, "physical bit error rate (frames failing CRC are dropped)")
	latency := flag.Float64("latency", 0.02, "base one-way delay in seconds")
	jitter := flag.Float64("jitter", 0.03, "uniform extra delay bound in seconds")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus text format) on this address and keep running")
	workers := flag.Int("workers", 1, "worker count for training and batch pre-scoring (0 = one per CPU, 1 = serial); outputs are identical at every setting")
	flag.Parse()

	if err := run(*seed, *sessions, *loss, *burst, *ber, *latency, *jitter, *metricsAddr, *workers, *retransmit); err != nil {
		fmt.Fprintln(os.Stderr, "awareoffice:", err)
		os.Exit(1)
	}
}

func run(seed int64, sessions int, loss, burst, ber, latency, jitter float64, metricsAddr string, workers int, retransmit bool) error {
	var reg *obs.Registry
	var ln net.Listener
	if metricsAddr != "" {
		reg = obs.NewRegistry()
		var err error
		if ln, err = net.Listen("tcp", metricsAddr); err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() { _ = (&http.Server{Handler: mux}).Serve(ln) }()
		fmt.Printf("metrics: http://%s/metrics\n", ln.Addr())
	}

	clf, measure, threshold, err := trainStack(seed, reg, workers)
	if err != nil {
		return err
	}
	fmt.Printf("recognition stack ready: threshold s = %.3f\n", threshold)

	sim := awareoffice.NewSimulation(seed + 10)
	link := awareoffice.Link{Latency: latency, Jitter: jitter, Loss: loss, BitErrorRate: ber}
	var channel *fault.GilbertElliott
	if burst > 0 {
		channel = fault.BurstLoss(burst)
		channel.Instrument(reg)
		link.Loss = 0
		link.LossModel = channel
	}
	bus, err := awareoffice.NewBus(sim, link)
	if err != nil {
		return err
	}
	if retransmit {
		if err := bus.EnableReliability(awareoffice.DefaultReliability()); err != nil {
			return err
		}
	}
	bus.Instrument(reg)
	plain := &awareoffice.Camera{Name: "camera-plain"}
	plain.Instrument(reg)
	plain.Attach(bus)
	filtered := &awareoffice.Camera{Name: "camera-cqm", UseQuality: true, MinQuality: threshold}
	filtered.Instrument(reg)
	filtered.Attach(bus)
	pen := &awareoffice.Pen{Classifier: clf, Measure: measure}
	switch {
	case workers == 0: // auto: batch pre-scoring with one worker per CPU
		pen.PreScoreWorkers = runtime.GOMAXPROCS(0)
	case workers > 1:
		pen.PreScoreWorkers = workers
	}
	pen.Attach(bus)

	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	}
	rng := rand.New(rand.NewSource(seed + 11))
	var truths []float64
	offset := 0.0
	for i := 0; i < sessions; i++ {
		readings, err := sensor.OfficeSession(styles[i%len(styles)]).Run(rng)
		if err != nil {
			return fmt.Errorf("session %d: %w", i, err)
		}
		for k := range readings {
			readings[k].T += offset
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			return fmt.Errorf("feeding session %d: %w", i, err)
		}
		truths = append(truths, awareoffice.EndOfWritingTimes(readings)...)
		offset = readings[len(readings)-1].T + 2
	}
	sim.Run(offset + 5)

	st := bus.Stats()
	fmt.Printf("network: %d published, %d delivered, %d lost, %d CRC-dropped\n",
		st.Published, st.Delivered, st.Dropped, st.Corrupted)
	if channel != nil {
		fmt.Printf("  burst channel: %d drops over %d decisions (stationary %.1f%%)\n",
			channel.Drops(), channel.Decisions(), 100*channel.StationaryLoss())
	}
	names := make([]string, 0, len(st.Subscribers))
	for name := range st.Subscribers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		link := st.Subscribers[name]
		fmt.Printf("  link %-14s %d delivered, %d lost, %d corrupted, %d duplicated\n",
			name+":", link.Delivered, link.Dropped, link.Corrupted, link.Duplicated)
	}
	if retransmit {
		pubs := make([]string, 0, len(st.Publishers))
		for name := range st.Publishers {
			pubs = append(pubs, name)
		}
		sort.Strings(pubs)
		for _, name := range pubs {
			ps := st.Publishers[name]
			fmt.Printf("  send window %-9s %d published, %d retransmits, %d gave up, %d outstanding\n",
				name+":", ps.Published, ps.Retransmits, ps.GaveUp, ps.Outstanding)
		}
	}
	fmt.Printf("true end-of-writing moments: %d\n\n", len(truths))
	scoreP := awareoffice.ScoreSnapshots(plain.Snapshots(), truths, 2.5)
	scoreF := awareoffice.ScoreSnapshots(filtered.Snapshots(), truths, 2.5)
	fmt.Printf("%-14s %5s %9s %10s %8s\n", "camera", "hits", "spurious", "precision", "recall")
	fmt.Printf("%-14s %5d %9d %10.3f %8.3f\n",
		"plain", scoreP.Hits, scoreP.Spurious, scoreP.Precision(), scoreP.Recall())
	fmt.Printf("%-14s %5d %9d %10.3f %8.3f  (ignored %d events)\n",
		"cqm-filtered", scoreF.Hits, scoreF.Spurious, scoreF.Precision(), scoreF.Recall(), filtered.Ignored())

	if ln != nil {
		fmt.Printf("\nserving metrics on http://%s/metrics — Ctrl-C to exit\n", ln.Addr())
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
	}
	return nil
}

func trainStack(seed int64, reg *obs.Registry, workers int) (classify.Classifier, *core.Measure, float64, error) {
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 12},
			{Context: sensor.ContextWriting, Duration: 12},
			{Context: sensor.ContextPlaying, Duration: 12},
		}}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		return nil, nil, 0, err
	}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	observations, err := core.Observe(clf, mixed)
	if err != nil {
		return nil, nil, 0, err
	}
	build := core.BuildConfig{Metrics: reg}
	build.Clustering.Workers = workers
	build.Hybrid.Workers = workers
	measure, err := core.Build(observations, nil, build)
	if err != nil {
		return nil, nil, 0, err
	}
	analysis, err := core.Analyze(measure, observations)
	if err != nil {
		return nil, nil, 0, err
	}
	return clf, measure, analysis.Threshold, nil
}
