// Command cqmload drives a cqmserve binary front with a simulated pen
// fleet and reports sustained throughput and latency percentiles.
//
// The fleet is virtual: requests for -pens distinct pen identities are
// multiplexed over a handful of pipelined connections, each with a bounded
// in-flight window (a closed loop — the next request is issued only when a
// slot frees up, so the harness measures the server, not its own queues).
// Payloads replay a deterministic workload pool recorded from the sensor
// scenario mix with injected faults and classifier errors, so accepted,
// discarded, and ε outcomes all occur at realistic rates.
//
// With no -target, cqmload self-serves: it trains the quick model stack in
// process, starts a loopback cqmserve core, and loads that — one command
// produces serving numbers on any machine. Results are written to
// -out (default BENCH_serve.json) via the crash-safe artifact writer.
//
// With -chaos the harness instead routes a resilient client fleet through
// a seeded fault-injecting proxy (internal/chaos) and writes
// BENCH_chaos.json: throughput and latency under resets, burst blackholes,
// slow-loris dribbling, corruption, and injected delay, plus the end-state
// accounting proving no request was silently lost on either side.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cqm/internal/ckpt"
	"cqm/internal/particle"
	"cqm/internal/serve"
)

type options struct {
	target    string
	pens      int
	duration  time.Duration
	conns     int
	window    int
	seed      int64
	workers   int
	shards    int
	queue     int
	batch     int
	threshold float64
	out       string

	chaos        bool
	chaosWorkers int
}

func main() {
	var opts options
	flag.StringVar(&opts.target, "target", "", "binary front address of a running cqmserve (empty = self-serve in process)")
	flag.IntVar(&opts.pens, "pens", 100000, "simulated pen identities")
	flag.DurationVar(&opts.duration, "duration", 30*time.Second, "load duration")
	flag.IntVar(&opts.conns, "conns", 2, "pipelined connections")
	flag.IntVar(&opts.window, "window", 512, "in-flight requests per connection (closed loop)")
	flag.Int64Var(&opts.seed, "seed", 1, "workload and training seed")
	flag.IntVar(&opts.workers, "workers", 0, "training workers when self-serving (0 = one per CPU)")
	flag.IntVar(&opts.shards, "shards", 0, "self-serve worker shards (0 = GOMAXPROCS)")
	flag.IntVar(&opts.queue, "queue", 4096, "self-serve per-shard queue depth")
	flag.IntVar(&opts.batch, "batch", 256, "self-serve batch size cap")
	flag.Float64Var(&opts.threshold, "threshold", -1, "self-serve threshold (negative = trained)")
	flag.StringVar(&opts.out, "out", "", "write the JSON report here (default BENCH_serve.json, BENCH_chaos.json with -chaos; \"-\" = skip)")
	flag.BoolVar(&opts.chaos, "chaos", false, "run through a seeded fault-injecting proxy with the resilient client fleet")
	flag.IntVar(&opts.chaosWorkers, "chaos-workers", 32, "concurrent requests in -chaos mode")
	flag.Parse()

	switch {
	case opts.out == "-":
		opts.out = ""
	case opts.out == "" && opts.chaos:
		opts.out = "BENCH_chaos.json"
	case opts.out == "":
		opts.out = "BENCH_serve.json"
	}
	runMode := run
	if opts.chaos {
		runMode = runChaos
	}
	if err := runMode(opts); err != nil {
		fmt.Fprintf(os.Stderr, "cqmload: %v\n", err)
		os.Exit(1)
	}
}

// connStats tallies one connection's outcomes.
type connStats struct {
	sent      uint64
	responses uint64
	accepted  uint64
	discarded uint64
	epsilon   uint64
	rejected  [6]uint64 // by RejectCode
	latencies []int64   // nanoseconds, one per response
}

// loadConn is one pipelined connection: a slot ring bounds the in-flight
// window and carries each request's send stamp to the receiver.
type loadConn struct {
	conn      net.Conn
	slots     chan uint16
	sendNanos []atomic.Int64
	stats     connStats
}

func run(opts options) error {
	if opts.pens < 1 {
		return fmt.Errorf("-pens must be positive")
	}
	if opts.window < 1 || opts.window > 1<<16 {
		return fmt.Errorf("-window must be in 1..65536")
	}
	if opts.conns < 1 {
		return fmt.Errorf("-conns must be positive")
	}

	workload, err := serve.NewWorkload(serve.WorkloadConfig{Seed: opts.seed})
	if err != nil {
		return fmt.Errorf("building workload: %w", err)
	}
	fmt.Fprintf(os.Stderr, "workload: %d pooled items, %d pens, %d conns x window %d\n",
		workload.Len(), opts.pens, opts.conns, opts.window)

	target := opts.target
	var self *serve.Server
	var selfLn net.Listener
	if target == "" {
		if self, selfLn, err = selfServe(opts); err != nil {
			return err
		}
		target = selfLn.Addr().String()
		defer func() { _ = selfLn.Close() }()
	}

	// Dial the fleet's connections.
	conns := make([]*loadConn, opts.conns)
	for i := range conns {
		c, err := net.Dial("tcp", target)
		if err != nil {
			return fmt.Errorf("dialing %s: %w", target, err)
		}
		lc := &loadConn{
			conn:      c,
			slots:     make(chan uint16, opts.window),
			sendNanos: make([]atomic.Int64, opts.window),
		}
		for s := 0; s < opts.window; s++ {
			lc.slots <- uint16(s)
		}
		conns[i] = lc
	}

	var penCounter atomic.Uint64 // global pen cursor: wraps through all identities
	stopC := make(chan struct{})
	go func() {
		time.Sleep(opts.duration)
		close(stopC)
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for _, lc := range conns {
		wg.Add(1)
		go func(lc *loadConn) {
			defer wg.Done()
			runConn(lc, workload, &penCounter, opts.pens, stopC)
		}(lc)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report, err := buildReport(opts, conns, elapsed, penCounter.Load(), self)
	if err != nil {
		return err
	}
	printReport(report)

	if self != nil {
		_ = selfLn.Close()
		self.Drain()
	}
	if opts.out != "" {
		//lint:ignore determinism-taint a load report is measurement, not reproducible output: wall-clock latency and the run date are its payload
		if err := writeReport(opts.out, report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", opts.out)
	}
	return nil
}

// selfServe trains the quick stack and starts a loopback scoring core.
func selfServe(opts options) (*serve.Server, net.Listener, error) {
	shards := opts.shards
	if shards == 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "self-serve: training quick model (seed %d)\n", opts.seed)
	m, trained, err := serve.TrainQuickModel(opts.seed, opts.workers)
	if err != nil {
		return nil, nil, fmt.Errorf("training model: %w", err)
	}
	threshold := opts.threshold
	if threshold < 0 {
		threshold = trained
	}
	cfg := serve.Config{
		Shards:     shards,
		QueueDepth: opts.queue,
		BatchSize:  opts.batch,
		Threshold:  threshold,
		Handle:     ckpt.NewHandle(m),
	}
	if opts.chaos {
		// Under chaos the core's own defenses are part of what is being
		// measured: shedding on sustained queue delay and a short idle
		// deadline that disconnects dribbling or blackholed peers.
		cfg.ShedTarget = 25 * time.Millisecond
		cfg.IdleTimeout = 2 * time.Second
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go func() { _ = srv.ServeBinary(ln) }()
	fmt.Fprintf(os.Stderr, "self-serve: %s (%d shards, threshold %.3f)\n", ln.Addr(), shards, threshold)
	return srv, ln, nil
}

// runConn drives one connection until stopC fires and every in-flight
// request has been answered.
func runConn(lc *loadConn, workload *serve.Workload, penCounter *atomic.Uint64, pens int, stopC <-chan struct{}) {
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		readResponses(lc)
	}()

	w := bufio.NewWriterSize(lc.conn, 64<<10)
	sendOne := func(slot uint16) bool {
		n := penCounter.Add(1) - 1
		pen := int(n % uint64(pens))
		round := int(n / uint64(pens))
		item := workload.Item(pen, round)
		frame, err := serve.EncodeRequest(serve.Request{
			Node:       serve.PenNode(pen),
			Seq:        slot,
			SentMillis: uint32(n), // truncated global cursor, echoed for debugging
			ClassID:    item.ClassID,
			Cues:       item.Cues,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqmload: encoding item for pen %d: %v\n", pen, err)
			return false
		}
		lc.sendNanos[slot].Store(time.Now().UnixNano())
		if _, err := w.Write(frame); err != nil {
			fmt.Fprintf(os.Stderr, "cqmload: send: %v\n", err)
			return false
		}
		lc.stats.sent++
		return true
	}

send:
	for {
		select {
		case <-stopC:
			break send
		case slot := <-lc.slots:
			if !sendOne(slot) {
				break send
			}
			// Fold every already-free slot into this write burst before
			// paying a flush.
		fold:
			for {
				select {
				case more := <-lc.slots:
					if !sendOne(more) {
						break send
					}
				default:
					break fold
				}
			}
			if err := w.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "cqmload: flush: %v\n", err)
				break send
			}
		}
	}
	_ = w.Flush()

	// Closed loop: when every slot is back in the ring, every response has
	// arrived. Then hang up cleanly.
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if atomic.LoadUint64(&lc.stats.responses) == lc.stats.sent {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if tc, ok := lc.conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	<-readerDone
	_ = lc.conn.Close()
}

// readResponses decodes response frames, computes per-request latency from
// the slot ring, and tallies outcomes. It owns lc.stats' response fields
// until the sender observes responses == sent after the send loop exits.
func readResponses(lc *loadConn) {
	r := bufio.NewReaderSize(lc.conn, 64<<10)
	var frame [particle.FrameLen]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return
		}
		resp, err := serve.DecodeResponse(frame[:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "cqmload: undecodable response: %v\n", err)
			return
		}
		if int(resp.Seq) >= len(lc.sendNanos) {
			// Not one of ours (e.g. a protocol reject) — returning its seq
			// to the slot ring would corrupt the window.
			fmt.Fprintf(os.Stderr, "cqmload: response outside slot window: %+v\n", resp)
			return
		}
		lat := time.Now().UnixNano() - lc.sendNanos[resp.Seq].Load()
		lc.stats.latencies = append(lc.stats.latencies, lat)
		atomic.AddUint64(&lc.stats.responses, 1)
		switch {
		case resp.Rejected:
			lc.stats.rejected[int(resp.Reject)%len(lc.stats.rejected)]++
		case resp.Status == serve.StatusAccepted:
			lc.stats.accepted++
		case resp.Status == serve.StatusDiscarded:
			lc.stats.discarded++
		default:
			lc.stats.epsilon++
		}
		lc.slots <- resp.Seq
	}
}

// report is the JSON shape of BENCH_serve.json.
type report struct {
	Date         string            `json:"date"`
	CPU          string            `json:"cpu"`
	Target       string            `json:"target"`
	Pens         int               `json:"pens"`
	DistinctPens uint64            `json:"distinct_pens_scored"`
	Rounds       float64           `json:"fleet_rounds"`
	Conns        int               `json:"conns"`
	Window       int               `json:"window"`
	DurationSec  float64           `json:"duration_s"`
	Sent         uint64            `json:"sent"`
	Responses    uint64            `json:"responses"`
	Accepted     uint64            `json:"accepted"`
	Discarded    uint64            `json:"discarded"`
	Epsilon      uint64            `json:"epsilon"`
	Rejected     uint64            `json:"rejected"`
	RejectedBy   map[string]uint64 `json:"rejected_by,omitempty"`
	Throughput   float64           `json:"throughput_fps"`
	Latency      latencyReport     `json:"latency_ms"`
	Server       *serverReport     `json:"server,omitempty"`
}

// latencyReport is the client-observed latency distribution in
// milliseconds.
type latencyReport struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// serverReport is the self-served core's accounting, proving the drain
// invariant held for the run.
type serverReport struct {
	Shards   uint64 `json:"shards"`
	Admitted uint64 `json:"admitted"`
	Scored   uint64 `json:"scored"`
	Batches  uint64 `json:"batches"`
	MaxBatch uint64 `json:"max_batch"`
}

// buildReport aggregates the fleet's tallies into the report.
func buildReport(opts options, conns []*loadConn, elapsed time.Duration, cursor uint64, self *serve.Server) (*report, error) {
	rep := &report{
		Date:        time.Now().UTC().Format("2006-01-02"),
		CPU:         fmt.Sprintf("%s (GOMAXPROCS=%d)", runtime.GOARCH, runtime.GOMAXPROCS(0)),
		Target:      opts.target,
		Pens:        opts.pens,
		Conns:       opts.conns,
		Window:      opts.window,
		DurationSec: elapsed.Seconds(),
		RejectedBy:  map[string]uint64{},
	}
	if rep.Target == "" {
		rep.Target = "self-serve"
	}
	var latencies []int64
	for _, lc := range conns {
		rep.Sent += lc.stats.sent
		rep.Responses += lc.stats.responses
		rep.Accepted += lc.stats.accepted
		rep.Discarded += lc.stats.discarded
		rep.Epsilon += lc.stats.epsilon
		for code, n := range lc.stats.rejected {
			if n > 0 {
				rep.Rejected += n
				rep.RejectedBy[serve.RejectCode(code).String()] += n
			}
		}
		latencies = append(latencies, lc.stats.latencies...)
	}
	if rep.Responses != rep.Sent {
		return nil, fmt.Errorf("lost frames: sent %d, received %d responses", rep.Sent, rep.Responses)
	}
	rep.DistinctPens = cursor
	if rep.DistinctPens > uint64(opts.pens) {
		rep.DistinctPens = uint64(opts.pens)
	}
	rep.Rounds = float64(cursor) / float64(opts.pens)
	if elapsed > 0 {
		rep.Throughput = float64(rep.Responses) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(latencies)-1))
			return float64(latencies[idx]) / 1e6
		}
		rep.Latency = latencyReport{
			P50:  pct(0.50),
			P99:  pct(0.99),
			P999: pct(0.999),
			Max:  float64(latencies[len(latencies)-1]) / 1e6,
		}
	}
	if self != nil {
		stats := self.Stats()
		rep.Server = &serverReport{
			Shards:   uint64(self.Shards()),
			Admitted: stats.Admitted,
			Scored:   stats.Scored(),
			Batches:  stats.Batches,
			MaxBatch: stats.MaxBatch,
		}
	}
	return rep, nil
}

// printReport writes the human summary to stderr (stdout stays clean for
// scripting around the JSON artifact).
func printReport(rep *report) {
	fmt.Fprintf(os.Stderr,
		"sustained %.0f frames/s over %.1fs: %d sent, %d responses (accept %d / discard %d / ε %d / reject %d)\n",
		rep.Throughput, rep.DurationSec, rep.Sent, rep.Responses,
		rep.Accepted, rep.Discarded, rep.Epsilon, rep.Rejected)
	fmt.Fprintf(os.Stderr, "fleet: %d pens, %d distinct scored, %.2f rounds\n",
		rep.Pens, rep.DistinctPens, rep.Rounds)
	fmt.Fprintf(os.Stderr, "latency: p50 %.3f ms, p99 %.3f ms, p999 %.3f ms, max %.3f ms\n",
		rep.Latency.P50, rep.Latency.P99, rep.Latency.P999, rep.Latency.Max)
}

// writeReport persists the JSON artifact crash-safely.
func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding report: %w", err)
	}
	if err := ckpt.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	return nil
}
