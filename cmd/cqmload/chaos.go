package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cqm/internal/chaos"
	"cqm/internal/ckpt"
	"cqm/internal/resilience"
	"cqm/internal/serve"
)

// chaosProfile is the fixed fault mix of -chaos runs: moderate enough that
// most requests succeed, hostile enough that every failure mode fires —
// resets, burst blackholes, slow-loris dribbling, truncation, corruption,
// and heavy-tailed latency. Only the seed varies, so a BENCH_chaos.json is
// reproducible from its recorded seed.
func chaosProfile(seed int64) chaos.Config {
	return chaos.Config{
		Seed:          seed,
		ResetProb:     0.02,
		BlackholeRate: 0.05,
		TruncateProb:  0.01,
		CorruptProb:   0.01,
		DribbleProb:   0.02,
		DelayProb:     0.2,
		DelayBase:     time.Millisecond,
		DelayMax:      20 * time.Millisecond,
		DribbleDelay:  time.Millisecond,
		IdleTimeout:   2 * time.Second,
	}
}

// chaosTally is one worker's private outcome counts (summed after join, so
// no contention during the run).
type chaosTally struct {
	requests  uint64
	accepted  uint64
	discarded uint64
	epsilon   uint64
	rejected  map[string]uint64
	errDead   uint64
	errOpen   uint64
	errExh    uint64
	latencies []int64
}

// runChaos drives the resilient client fleet through a chaos proxy and
// writes the BENCH_chaos.json baseline. The run doubles as an invariant
// check: it fails if any client request ended without a response or typed
// error, or if the self-served core's drain accounting does not balance.
func runChaos(opts options) error {
	workload, err := serve.NewWorkload(serve.WorkloadConfig{Seed: opts.seed})
	if err != nil {
		return fmt.Errorf("building workload: %w", err)
	}

	target := opts.target
	var self *serve.Server
	var selfLn net.Listener
	if target == "" {
		if self, selfLn, err = selfServe(opts); err != nil {
			return err
		}
		target = selfLn.Addr().String()
	}

	proxy, err := chaos.New(chaosProfile(opts.seed), target, nil)
	if err != nil {
		return fmt.Errorf("starting chaos proxy: %w", err)
	}
	fmt.Fprintf(os.Stderr, "chaos: proxy %s -> %s (seed %d), %d workers over %d clients\n",
		proxy.Addr(), target, opts.seed, opts.chaosWorkers, opts.conns)

	clients := make([]*resilience.Client, opts.conns)
	for i := range clients {
		clients[i] = resilience.New(resilience.Config{
			Addr:             proxy.Addr(),
			Seed:             opts.seed + int64(i),
			RequestTimeout:   2 * time.Second,
			MaxRetries:       4,
			BackoffBase:      5 * time.Millisecond,
			BackoffCap:       250 * time.Millisecond,
			BreakerThreshold: 8,
			BreakerCooldown:  200 * time.Millisecond,
		})
	}

	var penCounter atomic.Uint64
	stopC := make(chan struct{})
	go func() {
		time.Sleep(opts.duration)
		close(stopC)
	}()

	start := time.Now()
	tallies := make([]chaosTally, opts.chaosWorkers)
	var wg sync.WaitGroup
	for w := 0; w < opts.chaosWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chaosWorker(&tallies[w], clients[w%len(clients)], workload, &penCounter, opts.pens, stopC)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for _, cl := range clients {
		cl.Close()
	}
	_ = proxy.Close()
	if self != nil {
		_ = selfLn.Close()
		self.Drain()
	}

	rep, err := buildChaosReport(opts, tallies, clients, proxy, elapsed, self)
	if err != nil {
		return err
	}
	printChaosReport(rep)
	if opts.out != "" {
		//lint:ignore determinism-taint a chaos report is measurement, not reproducible output: wall-clock latency and the run date are its payload
		if err := writeChaosReport(opts.out, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", opts.out)
	}
	return nil
}

// chaosWorker issues requests through one resilient client until stopC
// fires, tallying every terminal outcome.
func chaosWorker(tally *chaosTally, cl *resilience.Client, workload *serve.Workload, penCounter *atomic.Uint64, pens int, stopC <-chan struct{}) {
	tally.rejected = map[string]uint64{}
	for {
		select {
		case <-stopC:
			return
		default:
		}
		n := penCounter.Add(1) - 1
		pen := int(n % uint64(pens))
		round := int(n / uint64(pens))
		item := workload.Item(pen, round)
		req := serve.Request{
			Node:       serve.PenNode(pen),
			Seq:        uint16(n),
			SentMillis: uint32(n),
			ClassID:    item.ClassID,
			Cues:       item.Cues,
		}
		tally.requests++
		t0 := time.Now()
		resp, err := cl.Do(req)
		switch {
		case err == nil && resp.Rejected:
			tally.rejected[resp.Reject.String()]++
		case err == nil:
			tally.latencies = append(tally.latencies, time.Since(t0).Nanoseconds())
			switch resp.Status {
			case serve.StatusAccepted:
				tally.accepted++
			case serve.StatusDiscarded:
				tally.discarded++
			default:
				tally.epsilon++
			}
		case errors.Is(err, resilience.ErrBreakerOpen):
			tally.errOpen++
		case errors.Is(err, resilience.ErrDeadline):
			tally.errDead++
		default:
			tally.errExh++
		}
	}
}

// chaosReport is the JSON shape of BENCH_chaos.json.
type chaosReport struct {
	Date        string             `json:"date"`
	CPU         string             `json:"cpu"`
	Target      string             `json:"target"`
	Seed        int64              `json:"seed"`
	DurationSec float64            `json:"duration_s"`
	Workers     int                `json:"workers"`
	Clients     int                `json:"clients"`
	Requests    uint64             `json:"requests"`
	Responses   uint64             `json:"responses"`
	Accepted    uint64             `json:"accepted"`
	Discarded   uint64             `json:"discarded"`
	Epsilon     uint64             `json:"epsilon"`
	Rejected    uint64             `json:"rejected"`
	RejectedBy  map[string]uint64  `json:"rejected_by,omitempty"`
	Errors      map[string]uint64  `json:"errors"`
	Client      chaosClientReport  `json:"client"`
	Chaos       map[string]uint64  `json:"chaos_decisions"`
	Latency     latencyReport      `json:"latency_ms"`
	Server      *chaosServerReport `json:"server,omitempty"`
}

// chaosClientReport aggregates the resilient clients' transport counters.
type chaosClientReport struct {
	Attempts        uint64 `json:"attempts"`
	TransportErrors uint64 `json:"transport_errors"`
	Retries         uint64 `json:"retries"`
	Dials           uint64 `json:"dials"`
	BreakerOpens    uint64 `json:"breaker_opens"`
}

// chaosServerReport is the self-served core's accounting under fire; the
// run fails unless admitted == scored + rejected_admitted.
type chaosServerReport struct {
	Shards           uint64 `json:"shards"`
	Admitted         uint64 `json:"admitted"`
	Scored           uint64 `json:"scored"`
	RejectedAdmitted uint64 `json:"rejected_admitted"`
	RejectedDeadline uint64 `json:"rejected_deadline"`
	RejectedShed     uint64 `json:"rejected_shed"`
	ShardRestarts    uint64 `json:"shard_restarts"`
}

// buildChaosReport aggregates tallies and enforces both halves of the
// chaos invariant.
func buildChaosReport(opts options, tallies []chaosTally, clients []*resilience.Client, proxy *chaos.Proxy, elapsed time.Duration, self *serve.Server) (*chaosReport, error) {
	rep := &chaosReport{
		Date:        time.Now().UTC().Format("2006-01-02"),
		CPU:         fmt.Sprintf("%s (GOMAXPROCS=%d)", runtime.GOARCH, runtime.GOMAXPROCS(0)),
		Target:      opts.target,
		Seed:        opts.seed,
		DurationSec: elapsed.Seconds(),
		Workers:     opts.chaosWorkers,
		Clients:     opts.conns,
		RejectedBy:  map[string]uint64{},
		Errors:      map[string]uint64{},
		Chaos:       map[string]uint64{},
	}
	if rep.Target == "" {
		rep.Target = "self-serve"
	}
	var latencies []int64
	var errDead, errOpen, errExh uint64
	for i := range tallies {
		t := &tallies[i]
		rep.Requests += t.requests
		rep.Accepted += t.accepted
		rep.Discarded += t.discarded
		rep.Epsilon += t.epsilon
		for code, n := range t.rejected {
			rep.Rejected += n
			rep.RejectedBy[code] += n
		}
		errDead += t.errDead
		errOpen += t.errOpen
		errExh += t.errExh
		latencies = append(latencies, t.latencies...)
	}
	rep.Responses = rep.Accepted + rep.Discarded + rep.Epsilon + rep.Rejected
	rep.Errors["deadline"] = errDead
	rep.Errors["breaker_open"] = errOpen
	rep.Errors["exhausted"] = errExh

	// Client half of the invariant: every request ended in a response or a
	// typed error.
	if got := rep.Responses + errDead + errOpen + errExh; got != rep.Requests {
		return nil, fmt.Errorf("client accounting violated: %d requests, %d terminal outcomes", rep.Requests, got)
	}

	for _, cl := range clients {
		st := cl.Stats()
		rep.Client.Attempts += st.Attempts
		rep.Client.TransportErrors += st.TransportErrors
		rep.Client.Retries += st.Retries
		rep.Client.Dials += st.Dials
		rep.Client.BreakerOpens += st.BreakerOpens
	}
	counts := proxy.Counts()
	for k := chaos.Kind(0); int(k) < len(counts); k++ {
		if counts[k] > 0 {
			rep.Chaos[k.String()] = counts[k]
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(latencies)-1))
			return float64(latencies[idx]) / 1e6
		}
		rep.Latency = latencyReport{
			P50:  pct(0.50),
			P99:  pct(0.99),
			P999: pct(0.999),
			Max:  float64(latencies[len(latencies)-1]) / 1e6,
		}
	}
	if self != nil {
		stats := self.Stats()
		rep.Server = &chaosServerReport{
			Shards:           uint64(self.Shards()),
			Admitted:         stats.Admitted,
			Scored:           stats.Scored(),
			RejectedAdmitted: stats.AdmittedRejects(),
			RejectedDeadline: stats.RejectedDeadline,
			RejectedShed:     stats.RejectedShed,
			ShardRestarts:    stats.ShardRestarts,
		}
		// Server half of the invariant: nothing admitted went unanswered.
		if stats.Scored()+stats.AdmittedRejects() != stats.Admitted {
			return nil, fmt.Errorf("server accounting violated: admitted %d, answered %d",
				stats.Admitted, stats.Scored()+stats.AdmittedRejects())
		}
	}
	return rep, nil
}

// printChaosReport writes the human summary to stderr.
func printChaosReport(rep *chaosReport) {
	fmt.Fprintf(os.Stderr,
		"chaos: %d requests in %.1fs: %d responses (accept %d / discard %d / ε %d / reject %d), errors %d deadline / %d breaker / %d exhausted\n",
		rep.Requests, rep.DurationSec, rep.Responses,
		rep.Accepted, rep.Discarded, rep.Epsilon, rep.Rejected,
		rep.Errors["deadline"], rep.Errors["breaker_open"], rep.Errors["exhausted"])
	fmt.Fprintf(os.Stderr, "client: %d attempts, %d transport errors, %d retries, %d dials, %d breaker opens\n",
		rep.Client.Attempts, rep.Client.TransportErrors, rep.Client.Retries, rep.Client.Dials, rep.Client.BreakerOpens)
	fmt.Fprintf(os.Stderr, "chaos decisions: %v\n", rep.Chaos)
	fmt.Fprintf(os.Stderr, "latency: p50 %.3f ms, p99 %.3f ms, p999 %.3f ms, max %.3f ms\n",
		rep.Latency.P50, rep.Latency.P99, rep.Latency.P999, rep.Latency.Max)
	if rep.Server != nil {
		fmt.Fprintf(os.Stderr, "server: admitted %d = scored %d + rejected %d (deadline %d, shed %d); %d shard restarts\n",
			rep.Server.Admitted, rep.Server.Scored, rep.Server.RejectedAdmitted,
			rep.Server.RejectedDeadline, rep.Server.RejectedShed, rep.Server.ShardRestarts)
	}
}

// writeChaosReport persists the JSON artifact crash-safely.
func writeChaosReport(path string, rep *chaosReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding report: %w", err)
	}
	if err := ckpt.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	return nil
}
