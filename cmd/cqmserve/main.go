// Command cqmserve is the CQM scoring daemon: it exposes the context
// quality measure over HTTP/JSON (POST /score, /score/batch) and over the
// compact binary frame protocol sharing the particle codec, shards the
// scoring state by source id across worker shards, batches admitted frames
// into single ScoreBatch calls, and applies explicit admission control —
// a full shard queue answers 429 / reject frames instead of blocking or
// dropping.
//
// The served model comes from a ckpt measure artifact (-model, hot
// reloaded with -model-watch) or, for self-contained runs, from an
// in-process training pass (-train-seed). SIGINT/SIGTERM triggers a
// graceful drain: admission stops, every already-admitted frame is
// answered, then the process exits 0.
//
// -adapt DIR turns on the self-healing model lifecycle: quality-engine
// drift triggers feed an adaptation supervisor that shadow-retrains on a
// pseudo-labelled window, gates the candidate on held-out validation,
// hot-promotes it through the model watcher, watches a post-promotion
// canary window, and rolls back to the last-good model on regression.
// DIR holds the served model copy, the last-good artifact, and the
// crash-safe adaptation journal; /adapt serves the supervisor status.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"cqm/internal/adapt"
	"cqm/internal/ckpt"
	"cqm/internal/core"
	"cqm/internal/obs"
	"cqm/internal/particle"
	"cqm/internal/quality"
	"cqm/internal/sensor"
	"cqm/internal/serve"
)

type options struct {
	addr         string
	binary       string
	shards       int
	queue        int
	batch        int
	model        string
	watch        time.Duration
	threshold    float64
	trainSeed    int64
	workers      int
	metricsOut   string
	pprof        bool
	shedTarget   time.Duration
	shedInterval time.Duration
	idleTimeout  time.Duration
	adaptDir     string
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", "127.0.0.1:8080", "HTTP address: /score, /score/batch, /metrics, /quality")
	flag.StringVar(&opts.binary, "binary", "", "also serve the binary frame protocol on this TCP address")
	flag.IntVar(&opts.shards, "shards", 0, "worker shards (0 = GOMAXPROCS)")
	flag.IntVar(&opts.queue, "queue", 1024, "per-shard admission queue depth")
	flag.IntVar(&opts.batch, "batch", 256, "max frames folded into one ScoreBatch call")
	flag.StringVar(&opts.model, "model", "", "serve this ckpt measure artifact (default: train in process)")
	flag.DurationVar(&opts.watch, "model-watch", 0, "poll the served model artifact for hot reloads at this interval (0 = off; with -adapt, the copy in DIR is what is watched)")
	flag.Float64Var(&opts.threshold, "threshold", -1, "acceptance threshold s (negative = trained threshold, or 0.5 with -model)")
	flag.Int64Var(&opts.trainSeed, "train-seed", 1, "seed of the in-process training pass when no -model is given")
	flag.IntVar(&opts.workers, "workers", 0, "training worker count (0 = one per CPU); the model is identical at every setting")
	flag.StringVar(&opts.metricsOut, "metrics-out", "", "flush a final JSON metrics snapshot to this file on shutdown")
	flag.BoolVar(&opts.pprof, "pprof", false, "serve net/http/pprof handlers at /debug/pprof/")
	flag.DurationVar(&opts.shedTarget, "shed-target", 25*time.Millisecond, "CoDel load-shedding target queue sojourn (0 = shedding off)")
	flag.DurationVar(&opts.shedInterval, "shed-interval", 100*time.Millisecond, "CoDel load-shedding observation interval")
	flag.DurationVar(&opts.idleTimeout, "idle-timeout", 2*time.Minute, "disconnect binary peers idle or dribbling for this long (negative = off)")
	flag.StringVar(&opts.adaptDir, "adapt", "", "enable the self-healing model lifecycle with this state directory (model copy, last-good, adaptation journal)")
	flag.Parse()

	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "cqmserve: %v\n", err)
		os.Exit(1)
	}
}

func run(opts options) error {
	if opts.shards == 0 {
		opts.shards = runtime.GOMAXPROCS(0)
	}
	reg := obs.NewRegistry()
	handle := ckpt.NewHandle(nil)

	var watcher *ckpt.ModelWatcher
	threshold := opts.threshold
	modelPath := opts.model
	if opts.model != "" {
		if opts.adaptDir != "" {
			// The lifecycle promotes and rolls back by rewriting the watched
			// artifact, and it must never mutate the operator's -model file:
			// copy it into the state directory and serve the copy, so every
			// write the loop makes stays inside DIR.
			if err := os.MkdirAll(opts.adaptDir, 0o755); err != nil {
				return err
			}
			data, err := os.ReadFile(opts.model)
			if err != nil {
				return fmt.Errorf("-adapt needs a readable -model artifact to copy: %w", err)
			}
			modelPath = filepath.Join(opts.adaptDir, "model.json")
			if err := ckpt.AtomicWriteFile(modelPath, data, 0o644); err != nil {
				return err
			}
		}
		var err error
		watcher, err = ckpt.NewModelWatcher(ckpt.WatchConfig{
			Path: modelPath,
			// Under the adaptation lifecycle, last-good persistence is the
			// supervisor's decision (after a canary pass), not the
			// watcher's: a reload during an open canary must not clobber
			// the rollback target.
			DeferLastGood: opts.adaptDir != "",
			Metrics:       reg,
		}, handle)
		if err != nil {
			return err
		}
		if _, err := watcher.Poll(); err != nil {
			fmt.Fprintf(os.Stderr, "cqmserve: initial model load: %v\n", err)
		}
		if handle.Load() == nil {
			fmt.Fprintf(os.Stderr, "cqmserve: no model yet at %s; serving 503 until one appears\n", modelPath)
		}
		if threshold < 0 {
			threshold = 0.5
		}
	} else {
		fmt.Printf("training in-process model (seed %d)\n", opts.trainSeed)
		m, trained, err := serve.TrainQuickModel(opts.trainSeed, opts.workers)
		if err != nil {
			return fmt.Errorf("training model: %w", err)
		}
		handle.Store(m)
		if threshold < 0 {
			threshold = trained
		}
		fmt.Printf("trained: %d rules, threshold %.3f\n", m.Rules(), trained)
		if opts.adaptDir != "" {
			// The lifecycle promotes by rewriting the served artifact, so
			// the in-process model needs a home on disk.
			if err := os.MkdirAll(opts.adaptDir, 0o755); err != nil {
				return err
			}
			modelPath = filepath.Join(opts.adaptDir, "model.json")
			if err := ckpt.WriteArtifact(modelPath, ckpt.Manifest{Kind: ckpt.KindMeasure}, m); err != nil {
				return err
			}
			var werr error
			watcher, werr = ckpt.NewModelWatcher(ckpt.WatchConfig{
				Path:          modelPath,
				DeferLastGood: true,
				Metrics:       reg,
			}, handle)
			if werr != nil {
				return werr
			}
			if _, werr := watcher.Poll(); werr != nil {
				return fmt.Errorf("loading adaptation model copy: %w", werr)
			}
		}
	}

	var sup *adapt.Supervisor
	if opts.adaptDir != "" {
		var build core.BuildConfig
		build.Metrics = reg
		build.Clustering.Workers = opts.workers
		build.Hybrid.Workers = opts.workers
		build.Hybrid.DivergenceRetries = 2
		var err error
		sup, err = adapt.New(adapt.Config{
			Dir:       filepath.Join(opts.adaptDir, "state"),
			ModelPath: modelPath,
			Watcher:   watcher,
			Handle:    handle,
			Threshold: threshold,
			Build:     build,
			Metrics:   reg,
		})
		if err != nil {
			return fmt.Errorf("adaptation supervisor: %w", err)
		}
		defer sup.Close()
	}

	qcfg := quality.Config{Threshold: threshold, Metrics: reg}
	if sup != nil {
		qcfg.OnTrigger = func(t quality.Trigger) { sup.Trigger(t) }
	}
	engine := quality.NewEngine(qcfg)
	scfg := serve.Config{
		Shards:       opts.shards,
		QueueDepth:   opts.queue,
		BatchSize:    opts.batch,
		Threshold:    threshold,
		Handle:       handle,
		Metrics:      reg,
		Quality:      engine,
		ShedTarget:   opts.shedTarget,
		ShedInterval: opts.shedInterval,
		IdleTimeout:  opts.idleTimeout,
	}
	if sup != nil {
		scfg.DecisionObserver = func(source string, at float64, cues []float64, classID int, out serve.Outcome) {
			sup.Decide(adapt.Decision{
				Source:   source,
				At:       at,
				Cues:     cues,
				Class:    sensor.ContextByID(classID),
				Q:        out.Q,
				HasQ:     out.Status != serve.StatusEpsilon,
				Accepted: out.Status == serve.StatusAccepted,
			})
		}
	}
	srv, err := serve.New(scfg)
	if err != nil {
		return err
	}

	mux := obs.NewMux(obs.MuxConfig{Registry: reg, Quality: quality.Handler(engine, nil), Pprof: opts.pprof})
	score := srv.HTTPHandler()
	mux.Handle("/score", score)
	mux.Handle("/score/batch", score)
	if sup != nil {
		mux.Handle("/adapt", sup.Handler())
	}

	httpLn, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return fmt.Errorf("http listener: %w", err)
	}
	httpSrv := serve.NewHTTPServer(mux)
	go func() { _ = httpSrv.Serve(httpLn) }()
	fmt.Printf("http: http://%s/score (%d shards, queue %d, batch %d, threshold %.3f)\n",
		httpLn.Addr(), opts.shards, opts.queue, opts.batch, threshold)

	var binLn net.Listener
	binDone := make(chan error, 1)
	if opts.binary != "" {
		if binLn, err = net.Listen("tcp", opts.binary); err != nil {
			return fmt.Errorf("binary listener: %w", err)
		}
		go func() { binDone <- srv.ServeBinary(binLn) }()
		fmt.Printf("binary: %s (%d-byte particle frames + cue section)\n", binLn.Addr(), particle.FrameLen)
	}
	if watcher != nil && opts.watch > 0 {
		watcher.Start(opts.watch, func(err error) {
			fmt.Fprintf(os.Stderr, "cqmserve: model watch: %v\n", err)
		})
	}
	adaptStop := make(chan struct{})
	adaptDone := make(chan struct{})
	if sup != nil {
		fmt.Printf("adaptation: state in %s, status at /adapt\n", opts.adaptDir)
		go func() {
			defer close(adaptDone)
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-adaptStop:
					return
				case <-tick.C:
					if err := sup.Drain(); err != nil {
						fmt.Fprintf(os.Stderr, "cqmserve: adaptation: %v\n", err)
					}
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	signal.Stop(stop)
	fmt.Printf("received %s, draining\n", sig)

	// Shutdown order: stop reloads, stop accepting connections, drain the
	// scoring core (in-flight frames answered, new ones rejected), then
	// close the HTTP front and flush artifacts.
	if watcher != nil {
		watcher.Stop()
	}
	if binLn != nil {
		_ = binLn.Close()
	}
	srv.Drain()
	if sup != nil {
		close(adaptStop)
		<-adaptDone
		st := sup.Status()
		fmt.Printf("adaptation: %d triggers, %d retrains, %d quarantined, %d promotions, %d rollbacks, %d canary passes\n",
			st.Triggers, st.Retrains, st.Quarantined, st.Promotions, st.Rollbacks, st.CanaryPass)
	}
	if binLn != nil {
		if err := <-binDone; err != nil {
			fmt.Fprintf(os.Stderr, "cqmserve: binary front: %v\n", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)

	stats := srv.Stats()
	fmt.Printf("drained: admitted %d, scored %d (accept %d / discard %d / ε %d), rejected %d overload, %d draining, %d no-model, %d internal, %d deadline, %d shed; %d shard restarts\n",
		stats.Admitted, stats.Scored(), stats.Accepted, stats.Discarded, stats.Epsilon,
		stats.RejectedOverload, stats.RejectedDraining, stats.RejectedUnavailable, stats.RejectedInternal,
		stats.RejectedDeadline, stats.RejectedShed, stats.ShardRestarts)
	if answered := stats.Scored() + stats.AdmittedRejects(); answered != stats.Admitted {
		return fmt.Errorf("drain accounting violated: admitted %d, answered %d", stats.Admitted, answered)
	}

	if opts.metricsOut != "" {
		if err := writeMetricsSnapshot(opts.metricsOut, reg); err != nil {
			return err
		}
		fmt.Printf("final metrics snapshot written to %s\n", opts.metricsOut)
	}
	return nil
}

// writeMetricsSnapshot flushes the registry as JSON via the crash-safe
// artifact writer.
func writeMetricsSnapshot(path string, reg *obs.Registry) error {
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		return fmt.Errorf("encoding metrics snapshot: %w", err)
	}
	if err := ckpt.AtomicWriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	return nil
}
