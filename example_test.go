package cqm_test

import (
	"fmt"

	"cqm"
)

// The normalization function L folds slightly-out-of-range FIS outputs
// back into [0,1] and maps everything else to the ε error state.
func ExampleNormalize() {
	q, _ := cqm.Normalize(1.2) // overshoot past the designated 1
	fmt.Printf("%.1f\n", q)
	_, err := cqm.Normalize(3.0) // uninterpretable
	fmt.Println(cqm.IsEpsilon(err))
	// Output:
	// 0.8
	// true
}

// Quality-weighted fusion believes the trustworthy source even when the
// majority disagrees.
func ExampleFuse() {
	reports := []cqm.FusionReport{
		{Source: "pen-1", Class: cqm.ContextPlaying, Quality: 0.15, HasQuality: true},
		{Source: "pen-2", Class: cqm.ContextPlaying, Quality: 0.15, HasQuality: true},
		{Source: "pen-3", Class: cqm.ContextWriting, Quality: 0.95, HasQuality: true},
	}
	majority, _ := cqm.Fuse(reports, cqm.FusionMajorityVote)
	weighted, _ := cqm.Fuse(reports, cqm.FusionQualityWeighted)
	fmt.Println(majority.Class, weighted.Class)
	// Output:
	// playing writing
}

// Contexts carry stable numeric identifiers — the c component of the
// quality FIS input v_Q.
func ExampleContext() {
	for _, c := range cqm.AllContexts() {
		fmt.Println(c.ID(), c)
	}
	// Output:
	// 1 lying
	// 2 writing
	// 3 playing
}
