// Benchmarks regenerating every figure and reported number of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its experiment's table/figure once (the same rows
// or series the paper reports) and then times the experiment.
package cqm_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cqm/internal/anfis"
	"cqm/internal/cluster"
	"cqm/internal/core"
	"cqm/internal/eval"
	"cqm/internal/obs"
	"cqm/internal/parallel"
)

var (
	benchOnce  sync.Once
	benchSetup *eval.Setup
	benchErr   error
	printOnce  sync.Map
)

func canonical(b *testing.B) *eval.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup, benchErr = eval.NewSetup(eval.SetupConfig{Seed: eval.DefaultSeed})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// printExperiment emits an experiment's rendering exactly once per run.
func printExperiment(key, output string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Print("\n" + output)
	}
}

// BenchmarkFig5QualityScatter regenerates Figure 5: the quality measure
// for the 24-point test set with right (o) and wrong (+) markers and group
// means (E1).
func BenchmarkFig5QualityScatter(b *testing.B) {
	s := canonical(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *eval.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.Figure5(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("fig5", res.Render())
}

// BenchmarkFig6Densities regenerates Figure 6: the right/wrong Gaussian
// densities with the optimal threshold at their intersection (E2).
func BenchmarkFig6Densities(b *testing.B) {
	s := canonical(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *eval.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.Figure6(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("fig6", res.Render())
}

// BenchmarkProbabilityTable regenerates the §3.2 probability numbers (E3):
// threshold s and the four median-cut probabilities, paper vs measured.
func BenchmarkProbabilityTable(b *testing.B) {
	s := canonical(b)
	b.ReportAllocs()
	b.ResetTimer()
	var rows []eval.ProbabilityRow
	for i := 0; i < b.N; i++ {
		rows = eval.ProbabilityTable(s)
	}
	b.StopTimer()
	printExperiment("prob", eval.RenderProbabilityTable(rows))
}

// BenchmarkImprovement33 regenerates the headline result (E4): filtering
// at the optimal threshold discards ~33 % of classifications — the wrong
// ones — improving the application's decision accordingly.
func BenchmarkImprovement33(b *testing.B) {
	s := canonical(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *eval.ImprovementResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.ImprovementExperiment(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("improvement", res.Render())
}

// BenchmarkBlackBoxAgnostic regenerates E5: the CQM as an add-on over four
// different classifier types. One iteration builds four full pipelines.
func BenchmarkBlackBoxAgnostic(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.AgnosticRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AgnosticismSweep(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("agnostic", eval.RenderAgnostic(rows))
}

// BenchmarkThresholdBalance regenerates E6a: the optimal threshold as a
// function of the training set's right/wrong balance (paper: balanced →
// s ≈ 0.5).
func BenchmarkThresholdBalance(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.BalanceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.ThresholdBalanceSweep(eval.DefaultSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("balance", eval.RenderBalance(rows))
}

// BenchmarkTestSizeSeparability regenerates E6b: separability vs test-set
// size (paper: "For a large set of data the odds … are worse").
func BenchmarkTestSizeSeparability(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.SizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.TestSizeSweep(eval.DefaultSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("sizes", eval.RenderSizes(rows))
}

// BenchmarkAwareOfficeCamera regenerates E7: the whiteboard camera's
// snapshot precision with and without CQM filtering over a lossy network.
func BenchmarkAwareOfficeCamera(b *testing.B) {
	s := canonical(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *eval.CameraResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.CameraExperiment(s, eval.CameraConfig{Seed: eval.DefaultSeed})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("camera", res.Render())
}

// BenchmarkAblationHybrid compares the full construction pipeline against
// clustering+LSE without ANFIS tuning.
func BenchmarkAblationHybrid(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AblationHybrid(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("abl-hybrid", eval.RenderAblation("Ablation — hybrid learning", rows))
}

// BenchmarkAblationConsequent compares linear (paper) vs constant TSK
// consequents.
func BenchmarkAblationConsequent(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AblationConsequents(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("abl-consequent", eval.RenderAblation("Ablation — consequent order", rows))
}

// BenchmarkAblationClustering compares subtractive (paper) vs mountain vs
// FCM rule extraction.
func BenchmarkAblationClustering(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AblationClustering(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("abl-clustering", eval.RenderAblation("Ablation — clustering method", rows))
}

// BenchmarkAblationDensity compares the Gaussian-MLE threshold (paper)
// against a kernel-density threshold.
func BenchmarkAblationDensity(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AblationDensity(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("abl-density", eval.RenderAblation("Ablation — density model", rows))
}

// BenchmarkAblationNormalization compares the normalized measure (paper's
// L with ε) against raw clamped scores.
func BenchmarkAblationNormalization(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.AblationNormalization(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("abl-normalization", eval.RenderAblation("Ablation — normalization", rows))
}

// BenchmarkOutlookPrediction regenerates E8: the §5 context-prediction
// extension — quality-trend monitoring anticipating context changes.
func BenchmarkOutlookPrediction(b *testing.B) {
	b.ReportAllocs()
	var out string
	for i := 0; i < b.N; i++ {
		res, err := eval.PredictionExperiment(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		out = res.Render()
	}
	b.StopTimer()
	printExperiment("predict", out)
}

// BenchmarkOutlookFusion regenerates E9: the §5 fusion extension —
// quality-weighted consensus across appliances vs blind majority voting.
func BenchmarkOutlookFusion(b *testing.B) {
	b.ReportAllocs()
	var out string
	for i := 0; i < b.N; i++ {
		res, err := eval.FusionExperiment(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		out = res.Render()
	}
	b.StopTimer()
	printExperiment("fusion", out)
}

// BenchmarkNoiseRobustness sweeps the sensor-noise level to show the
// CQM's ranking survives substrate degradation.
func BenchmarkNoiseRobustness(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.NoiseRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.NoiseRobustnessSweep(eval.DefaultSeed, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("noise", eval.RenderNoise(rows))
}

// BenchmarkThresholdConfidence bootstraps the optimal threshold's
// sampling uncertainty on the 24-point evaluation set.
func BenchmarkThresholdConfidence(b *testing.B) {
	s := canonical(b)
	b.ReportAllocs()
	b.ResetTimer()
	var res *eval.ConfidenceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.ThresholdConfidence(s, 500, 0.95)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("confidence", res.Render())
}

// BenchmarkCrossValidation runs the 5-fold cross-validation of the whole
// quality pipeline.
func BenchmarkCrossValidation(b *testing.B) {
	b.ReportAllocs()
	var res *eval.CrossValResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.CrossValidate(eval.DefaultSeed, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("crossval", res.Render())
}

// BenchmarkCueAblation compares cue sets (the paper's stddev triple vs
// richer pipelines) across the rebuilt stack.
func BenchmarkCueAblation(b *testing.B) {
	b.ReportAllocs()
	var rows []eval.CueRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = eval.CueAblation(eval.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printExperiment("cues", eval.RenderCues(rows))
}

// BenchmarkPipelineEndToEnd times the full paper pipeline: data
// generation, classifier training, quality-FIS construction, statistical
// analysis, and test-set draw.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.NewSetup(eval.SetupConfig{Seed: eval.DefaultSeed}); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelWorkerCounts are the worker settings every parallel benchmark
// sweeps; workers=1 is the serial baseline the speedups are read against.
var parallelWorkerCounts = []int{1, 2, 4}

// BenchmarkParallelSubtractive times the O(n²) subtractive clustering at
// n=2000 across worker counts. The deterministic-reduction contract makes
// the outputs bit-identical at every setting, so the sweep measures pure
// scheduling overhead/speedup.
func BenchmarkParallelSubtractive(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	const n, dims = 2000, 3
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, dims)
		for j := range row {
			row[j] = rng.Float64() * 10
		}
		data[i] = row
	}
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Subtractive(data, cluster.SubtractiveConfig{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelANFIS times three hybrid-learning epochs (gradient
// pass + LSE + two RMSE evaluations per epoch) on 3000 samples across
// worker counts.
func BenchmarkParallelANFIS(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	d := &anfis.Data{}
	for i := 0; i < 3000; i++ {
		x1, x2 := rng.Float64()*4, rng.Float64()*4
		d.X = append(d.X, []float64{x1, x2})
		d.Y = append(d.Y, x1*x2/16+0.1*rng.NormFloat64())
	}
	base, err := anfis.Build(d, anfis.BuildConfig{Clustering: cluster.SubtractiveConfig{Radius: 0.5, Workers: 0}})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys := base.Clone()
				if _, err := anfis.Train(sys, d, nil, anfis.Config{Epochs: 3, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelCrossval times the 5-fold cross-validation of the full
// quality pipeline with folds built and evaluated concurrently.
func BenchmarkParallelCrossval(b *testing.B) {
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.CrossValidateWorkers(eval.DefaultSeed, 5, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelScoreBatch times batch scoring of 4800 observations
// (the canonical test set tiled) on a shared pool across worker counts.
func BenchmarkParallelScoreBatch(b *testing.B) {
	s := canonical(b)
	var batch []core.Observation
	for len(batch) < 4800 {
		batch = append(batch, s.TestObs...)
	}
	for _, workers := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := parallel.New(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Measure.ScoreBatch(batch, pool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// cloneMeasure deep-copies a measure through its JSON codec so a benchmark
// can instrument its own copy without mutating the shared canonical fixture.
func cloneMeasure(tb testing.TB, m *core.Measure) *core.Measure {
	tb.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		tb.Fatal(err)
	}
	out := &core.Measure{}
	if err := json.Unmarshal(data, out); err != nil {
		tb.Fatal(err)
	}
	return out
}

// BenchmarkMeasureValue guards the scoring hot path's instrumentation
// cost: "bare" is the un-instrumented measure, "disabled" is instrumented
// with a nil registry (the production default), "live" feeds a real
// registry. bare and disabled must allocate identically; live adds only
// atomic counter traffic.
func BenchmarkMeasureValue(b *testing.B) {
	s := canonical(b)
	ob := s.TestObs[0]
	variants := []struct {
		name    string
		measure *core.Measure
	}{
		{"bare", s.Measure},
		{"disabled", func() *core.Measure {
			m := cloneMeasure(b, s.Measure)
			m.Instrument(nil)
			return m
		}()},
		{"live", func() *core.Measure {
			m := cloneMeasure(b, s.Measure)
			m.Instrument(obs.NewRegistry())
			return m
		}()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := v.measure.Score(ob.Cues, ob.Class); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestMeasureScoreDisabledMetricsAddNoAllocs pins the acceptance
// criterion: with no registry configured, the instrumented Score must
// allocate exactly as much as the never-instrumented one.
func TestMeasureScoreDisabledMetricsAddNoAllocs(t *testing.T) {
	setup, err := eval.NewSetup(eval.SetupConfig{Seed: eval.DefaultSeed})
	if err != nil {
		t.Fatal(err)
	}
	ob := setup.TestObs[0]
	score := func(m *core.Measure) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, err := m.Score(ob.Cues, ob.Class); err != nil {
				t.Fatal(err)
			}
		})
	}
	bare := score(setup.Measure)
	disabled := cloneMeasure(t, setup.Measure)
	disabled.Instrument(nil)
	if got := score(disabled); got != bare {
		t.Errorf("disabled instrumentation allocates %.1f/op, bare %.1f/op", got, bare)
	}
}
