// Outlook example: the two extensions sketched in the paper's §5 outlook,
// running on the public API.
//
//  1. Context prediction — the quality measure scores the live cue window
//     against *every* class; a rising alternative signals that "a context
//     classification changes in direction to another context" before the
//     classifier flips.
//  2. Fusion — three pens observe the same room; quality-weighted voting
//     beats blind majority because the CQM says which reports to believe.
//
// Run with:
//
//	go run ./examples/outlook
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cqm"
	"cqm/internal/feature"
)

func main() {
	clf, measure := trainStack()

	fmt.Println("— context prediction —")
	prediction(clf, measure)
	fmt.Println("\n— quality-weighted fusion —")
	fusionDemo(clf, measure)
}

// trainStack builds the classifier and an augmented quality measure whose
// counterfactual scores are calibrated (needed for prediction).
func trainStack() (cqm.Classifier, *cqm.Measure) {
	clean, err := cqm.GenerateDataset(cqm.GenerateConfig{
		Scenarios: []*cqm.Scenario{{Segments: []cqm.Segment{
			{Context: cqm.ContextLying, Duration: 12},
			{Context: cqm.ContextWriting, Duration: 12},
			{Context: cqm.ContextPlaying, Duration: 12},
		}}},
		WindowSize: 100,
		Seed:       31,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := (&cqm.TSKTrainer{}).Train(clean)
	if err != nil {
		log.Fatal(err)
	}
	mixed, err := cqm.GenerateDataset(cqm.GenerateConfig{
		Scenarios: []*cqm.Scenario{
			cqm.OfficeSession(cqm.DefaultStyle()),
			cqm.OfficeSession(cqm.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			cqm.OfficeSession(cqm.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			cqm.OfficeSession(cqm.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       32,
	})
	if err != nil {
		log.Fatal(err)
	}
	augmented, err := cqm.AugmentObservations(mixed, cqm.AllContexts())
	if err != nil {
		log.Fatal(err)
	}
	measure, err := cqm.BuildMeasure(augmented, nil, cqm.MeasureConfig{})
	if err != nil {
		log.Fatal(err)
	}
	return clf, measure
}

// prediction streams a session with a slow writing→playing transition and
// prints the per-class quality trends around it.
func prediction(clf cqm.Classifier, measure *cqm.Measure) {
	monitor, err := cqm.NewPredictMonitor(measure, cqm.AllContexts(), cqm.PredictConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	scenario := &cqm.Scenario{
		Segments: []cqm.Segment{
			{Context: cqm.ContextWriting, Duration: 8},
			{Context: cqm.ContextPlaying, Duration: 8},
		},
		Transition: 1.5,
	}
	readings, err := scenario.Run(rng)
	if err != nil {
		log.Fatal(err)
	}
	windows, err := (feature.Windower{Size: 100, Step: 25}).Slide(readings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-9s %-9s %-22s %s\n", "t[s]", "truth", "class", "q(lie)/q(write)/q(play)", "signal")
	for _, w := range windows {
		class, err := clf.Classify(w.Cues)
		if err != nil {
			log.Fatal(err)
		}
		step, err := monitor.Observe(w.Cues, class)
		if err != nil {
			log.Fatal(err)
		}
		signal := ""
		if step.ChangeIndicated {
			signal = "→ drifting toward " + step.Predicted.String()
		}
		fmt.Printf("%-6.2f %-9s %-9s %.2f / %.2f / %.2f       %s\n",
			w.End, w.Truth, class,
			step.Qualities[cqm.ContextLying],
			step.Qualities[cqm.ContextWriting],
			step.Qualities[cqm.ContextPlaying],
			signal)
	}
}

// fusionDemo fuses three pens with different user styles.
func fusionDemo(clf cqm.Classifier, measure *cqm.Measure) {
	styles := []cqm.Style{
		cqm.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
		{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9},
	}
	rng := rand.New(rand.NewSource(34))
	var sources [][]feature.Window
	for _, style := range styles {
		scenario := &cqm.Scenario{
			Segments: []cqm.Segment{
				{Context: cqm.ContextWriting, Duration: 10},
				{Context: cqm.ContextPlaying, Duration: 6},
				{Context: cqm.ContextLying, Duration: 6},
			},
			Style: style,
		}
		readings, err := scenario.Run(rng)
		if err != nil {
			log.Fatal(err)
		}
		windows, err := (feature.Windower{Size: 100}).Slide(readings)
		if err != nil {
			log.Fatal(err)
		}
		sources = append(sources, windows)
	}
	n := len(sources[0])
	majCorrect, qwCorrect := 0, 0
	for w := 0; w < n; w++ {
		truth := sources[0][w].Truth
		var reports []cqm.FusionReport
		for si, windows := range sources {
			win := windows[w]
			class, err := clf.Classify(win.Cues)
			if err != nil {
				log.Fatal(err)
			}
			rep := cqm.FusionReport{Source: fmt.Sprintf("pen-%d", si+1), Class: class}
			if q, err := measure.Score(win.Cues, class); err == nil {
				rep.Quality = q
				rep.HasQuality = true
			}
			reports = append(reports, rep)
		}
		if c, err := cqm.Fuse(reports, cqm.FusionMajorityVote); err == nil && c.Class == truth {
			majCorrect++
		}
		if c, err := cqm.Fuse(reports, cqm.FusionQualityWeighted); err == nil && c.Class == truth {
			qwCorrect++
		}
	}
	fmt.Printf("fused %d windows from %d pens\n", n, len(sources))
	fmt.Printf("majority vote     accuracy %.3f\n", float64(majCorrect)/float64(n))
	fmt.Printf("quality weighted  accuracy %.3f\n", float64(qwCorrect)/float64(n))
}
