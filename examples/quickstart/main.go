// Quickstart: the minimal CQM walkthrough using only the public API.
//
//  1. Simulate labelled AwarePen data.
//  2. Train the context classifier (a black box from the CQM's view).
//  3. Build the Context Quality Measure over its classifications.
//  4. Derive the optimal threshold and filter a fresh session.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cqm"
)

func main() {
	// 1. Labelled data from simulated whiteboard sessions: a nominal user
	// and an erratic one whose writing resembles playing.
	set, err := cqm.GenerateDataset(cqm.GenerateConfig{
		Scenarios: []*cqm.Scenario{
			cqm.OfficeSession(cqm.DefaultStyle()),
			cqm.OfficeSession(cqm.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			cqm.OfficeSession(cqm.DefaultStyle()),
			cqm.OfficeSession(cqm.Style{Amplitude: 2.2, Tempo: 1.2, Irregularity: 0.8}),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d labelled windows\n", set.Len())

	// 2. The AwarePen's own classifier: a TSK-FIS over stddev cues.
	clf, err := (&cqm.TSKTrainer{}).Train(set)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := cqm.ClassifierAccuracy(clf, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classifier %q accuracy: %.3f\n", clf.Name(), acc)

	// 3. Observe the classifier and build the quality measure. The CQM
	// only ever sees (cues in, class out) — the classifier stays a black
	// box.
	obs, err := cqm.Observe(clf, set)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := cqm.BuildMeasure(obs, nil, cqm.MeasureConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality FIS: %d rules over %d inputs (cues + class)\n",
		measure.Rules(), measure.Inputs())

	// 4. Statistical analysis: densities, optimal threshold, filter.
	analysis, err := cqm.Analyze(measure, obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("right density N(%.3f, %.3f), wrong density N(%.3f, %.3f)\n",
		analysis.Right.Mu, analysis.Right.Sigma, analysis.Wrong.Mu, analysis.Wrong.Sigma)
	fmt.Printf("optimal threshold s = %.3f\n", analysis.Threshold)

	filter, err := cqm.NewFilter(measure, analysis.Threshold)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := filter.Run(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filtering: %d/%d discarded (%.1f%%), accuracy %.3f → %.3f\n",
		stats.Discarded, stats.Total, 100*stats.DiscardRate(),
		stats.RawAccuracy(), stats.AcceptedAccuracy())
}
