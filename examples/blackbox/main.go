// Black-box example: the paper's central architectural claim — the CQM is
// "applicable as an add-on to any context recognition system". Here the
// quality measure wraps a k-nearest-neighbour classifier it knows nothing
// about, and still separates its right from its wrong classifications.
//
// Run with:
//
//	go run ./examples/blackbox
package main

import (
	"fmt"
	"log"

	"cqm"
)

func main() {
	// Mixed sessions with enough ambiguity to make any classifier err.
	set, err := cqm.GenerateDataset(cqm.GenerateConfig{
		Scenarios: []*cqm.Scenario{
			cqm.OfficeSession(cqm.DefaultStyle()),
			cqm.OfficeSession(cqm.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			cqm.OfficeSession(cqm.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			cqm.OfficeSession(cqm.Style{Amplitude: 0.5, Tempo: 0.8, Irregularity: 0.5}),
			cqm.OfficeSession(cqm.DefaultStyle()),
			cqm.OfficeSession(cqm.Style{Amplitude: 2.2, Tempo: 1.2, Irregularity: 0.8}),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       21,
	})
	if err != nil {
		log.Fatal(err)
	}
	set.Shuffle(22)
	trainSet, checkSet, testSet, err := set.Split(0.5, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	// Three very different black boxes, one identical quality pipeline.
	trainers := []struct {
		name string
		tr   cqm.Trainer
	}{
		{"knn", &cqm.KNNTrainer{K: 5}},
		{"naive-bayes", &cqm.NaiveBayesTrainer{}},
		{"nearest-centroid", cqm.NearestCentroidTrainer{}},
	}
	fmt.Printf("%-18s %9s %9s %11s %9s\n",
		"black box", "raw acc", "thresh", "filt. acc", "discard")
	for _, t := range trainers {
		clf, err := t.tr.Train(trainSet)
		if err != nil {
			log.Fatal(err)
		}
		trainObs, err := cqm.Observe(clf, trainSet)
		if err != nil {
			log.Fatal(err)
		}
		checkObs, err := cqm.Observe(clf, checkSet)
		if err != nil {
			log.Fatal(err)
		}
		testObs, err := cqm.Observe(clf, testSet)
		if err != nil {
			log.Fatal(err)
		}
		measure, err := cqm.BuildMeasure(trainObs, checkObs, cqm.MeasureConfig{})
		if err != nil {
			log.Fatal(err)
		}
		analysis, err := cqm.Analyze(measure, checkObs)
		if err != nil {
			log.Fatal(err)
		}
		filter, err := cqm.NewFilter(measure, analysis.Threshold)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := filter.Run(testObs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %9.3f %9.3f %11.3f %8.1f%%\n",
			t.name, stats.RawAccuracy(), analysis.Threshold,
			stats.AcceptedAccuracy(), 100*stats.DiscardRate())
	}
	fmt.Println("\nthe same quality pipeline improves every classifier it wraps —")
	fmt.Println("it never looked inside any of them.")
}
