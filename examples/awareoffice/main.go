// AwareOffice example: the distributed scenario from the paper's
// introduction. An AwarePen broadcasts context events over a lossy
// wireless medium; two whiteboard cameras listen — one trusts every
// event, one filters with the CQM — and we compare their snapshots
// against the true end-of-writing moments.
//
// Run with:
//
//	go run ./examples/awareoffice
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cqm/internal/awareoffice"
	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/sensor"
)

func main() {
	clf, measure, threshold := trainStack(11)
	fmt.Printf("recognition stack ready (threshold s = %.3f)\n\n", threshold)

	// The office: a deterministic discrete-event simulation with a lossy
	// RF medium (20 ms ± 30 ms, 5 % loss, 2 % duplicates).
	sim := awareoffice.NewSimulation(12)
	bus, err := awareoffice.NewBus(sim, awareoffice.Link{
		Latency: 0.02, Jitter: 0.03, Loss: 0.05, Duplicate: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}

	plain := &awareoffice.Camera{Name: "camera-plain"}
	plain.Attach(bus)
	filtered := &awareoffice.Camera{Name: "camera-cqm", UseQuality: true, MinQuality: threshold}
	filtered.Attach(bus)

	pen := &awareoffice.Pen{Classifier: clf, Measure: measure}
	pen.Attach(bus)

	// Six office sessions: nominal and flicker-prone users alternating.
	styles := []sensor.Style{
		sensor.DefaultStyle(),
		{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6},
	}
	rng := rand.New(rand.NewSource(13))
	var truths []float64
	offset := 0.0
	for i := 0; i < 6; i++ {
		readings, err := sensor.OfficeSession(styles[i%2]).Run(rng)
		if err != nil {
			log.Fatal(err)
		}
		for k := range readings {
			readings[k].T += offset
		}
		if _, err := pen.Feed(sim, readings); err != nil {
			log.Fatal(err)
		}
		truths = append(truths, awareoffice.EndOfWritingTimes(readings)...)
		offset = readings[len(readings)-1].T + 2
	}
	sim.Run(offset + 5)

	st := bus.Stats()
	fmt.Printf("network: %d events published, %d deliveries, %d dropped\n\n",
		st.Published, st.Delivered, st.Dropped)

	scoreP := awareoffice.ScoreSnapshots(plain.Snapshots(), truths, 2.5)
	scoreF := awareoffice.ScoreSnapshots(filtered.Snapshots(), truths, 2.5)
	fmt.Printf("true end-of-writing moments: %d\n\n", len(truths))
	fmt.Printf("%-14s %5s %9s %10s %8s\n", "camera", "hits", "spurious", "precision", "recall")
	fmt.Printf("%-14s %5d %9d %10.3f %8.3f\n",
		"plain", scoreP.Hits, scoreP.Spurious, scoreP.Precision(), scoreP.Recall())
	fmt.Printf("%-14s %5d %9d %10.3f %8.3f   (ignored %d low-quality events)\n",
		"cqm-filtered", scoreF.Hits, scoreF.Spurious, scoreF.Precision(), scoreF.Recall(),
		filtered.Ignored())
}

// trainStack builds the pen's classifier and quality measure.
func trainStack(seed int64) (classify.Classifier, *core.Measure, float64) {
	clean, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{{Segments: []sensor.Segment{
			{Context: sensor.ContextLying, Duration: 12},
			{Context: sensor.ContextWriting, Duration: 12},
			{Context: sensor.ContextPlaying, Duration: 12},
		}}},
		WindowSize: 100,
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		log.Fatal(err)
	}
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       seed + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	obs, err := core.Observe(clf, mixed)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := core.Build(obs, nil, core.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := core.Analyze(measure, obs)
	if err != nil {
		log.Fatal(err)
	}
	return clf, measure, analysis.Threshold
}
