// AwarePen example: the full recognition pipeline of the paper's Figure 4,
// window by window — sensors → stddev cues → TSK classification → quality
// measure → normalized CQM — on a session the classifier was never
// trained for (an erratic user, with context transitions).
//
// Run with:
//
//	go run ./examples/awarepen
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cqm"
	"cqm/internal/classify"
	"cqm/internal/core"
	"cqm/internal/dataset"
	"cqm/internal/feature"
	"cqm/internal/sensor"
)

func main() {
	// Train the classifier on the nominal user only — the paper's
	// pre-trained AwarePen.
	clean, err := cqm.GenerateDataset(cqm.GenerateConfig{
		Scenarios: []*cqm.Scenario{{Segments: []cqm.Segment{
			{Context: cqm.ContextLying, Duration: 12},
			{Context: cqm.ContextWriting, Duration: 12},
			{Context: cqm.ContextPlaying, Duration: 12},
		}}},
		WindowSize: 100,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	clf, err := (&classify.TSKTrainer{}).Train(clean)
	if err != nil {
		log.Fatal(err)
	}

	// Build the quality measure from mixed sessions with transitions and
	// off-style users — where the classifier actually errs.
	mixed, err := dataset.Generate(dataset.GenerateConfig{
		Scenarios: []*sensor.Scenario{
			sensor.OfficeSession(sensor.DefaultStyle()),
			sensor.OfficeSession(sensor.Style{Amplitude: 2.6, Tempo: 1.4, Irregularity: 0.9}),
			sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6}),
			sensor.OfficeSession(sensor.DefaultStyle()),
		},
		WindowSize: 100,
		WindowStep: 50,
		Seed:       8,
	})
	if err != nil {
		log.Fatal(err)
	}
	obs, err := core.Observe(clf, mixed)
	if err != nil {
		log.Fatal(err)
	}
	measure, err := core.Build(obs, nil, core.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}
	analysis, err := core.Analyze(measure, obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline ready: %d-rule quality FIS, threshold s = %.3f\n\n",
		measure.Rules(), analysis.Threshold)

	// Stream a fresh erratic-user session through the pipeline.
	rng := rand.New(rand.NewSource(9))
	session := sensor.OfficeSession(sensor.Style{Amplitude: 1.6, Tempo: 1.2, Irregularity: 0.6})
	readings, err := session.Run(rng)
	if err != nil {
		log.Fatal(err)
	}
	windows, err := (feature.Windower{Size: 100}).Slide(readings)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s %-9s %-9s %-7s %s\n", "t[s]", "truth", "class", "CQM", "verdict")
	var kept, keptRight, total, right int
	for _, w := range windows {
		class, err := clf.Classify(w.Cues)
		if err != nil {
			log.Fatal(err)
		}
		total++
		if class == w.Truth {
			right++
		}
		q, err := measure.Score(w.Cues, class)
		verdict := "accept"
		switch {
		case err != nil && core.IsEpsilon(err):
			verdict = "discard (ε)"
		case err != nil:
			log.Fatal(err)
		case q <= analysis.Threshold:
			verdict = "discard"
		default:
			kept++
			if class == w.Truth {
				keptRight++
			}
		}
		qs := "  ε  "
		if err == nil {
			qs = fmt.Sprintf("%.3f", q)
		}
		fmt.Printf("%-6.1f %-9s %-9s %-7s %s\n", w.End, w.Truth, class, qs, verdict)
	}
	fmt.Printf("\nraw accuracy %.2f → filtered accuracy %.2f (%d of %d windows kept)\n",
		float64(right)/float64(total), float64(keptRight)/float64(max(kept, 1)), kept, total)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
